//! Generic set-associative cache array with per-line metadata and data.
//!
//! The coherence layer instantiates this twice: once per L1 (metadata = L1
//! coherence state) and once per L2 bank (metadata = directory entry). The
//! array itself knows nothing about coherence; it only manages tags, data,
//! and pseudo-LRU victims.

use crate::addr::BlockAddr;
use crate::block::BlockData;
use crate::plru::TreePlru;

/// One cache line: a tagged block with caller-defined metadata.
#[derive(Clone, Debug, Hash)]
pub struct Line<M> {
    /// Block address held by this line (the full block number doubles as
    /// the tag; storing it whole costs nothing in a simulator).
    pub block: BlockAddr,
    pub meta: M,
    pub data: BlockData,
}

/// Result of a victim search for an insertion.
#[derive(Debug, PartialEq, Eq)]
pub enum LookupResult {
    /// The block is already present at this way.
    Hit { way: usize },
    /// A free way is available.
    Free { way: usize },
    /// The set is full; the pseudo-LRU way and its block are reported so
    /// the caller can run its eviction protocol.
    Victim { way: usize, block: BlockAddr },
}

/// A resident-line handle produced by one physical tag lookup.
///
/// The coherence layers thread one of these through an entire access or
/// message dispatch instead of re-probing the tag array at every helper:
/// [`SetAssocCache::line_at`], [`SetAssocCache::line_at_mut`],
/// [`SetAssocCache::touch_at`] and [`SetAssocCache::remove_at`] go
/// straight to the slot. The `gen` field snapshots the cache's residency
/// generation; using a token across an insertion or removal is a bug and
/// trips a debug assertion rather than corrupting an unrelated line.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ProbedWay {
    set: u32,
    way: u32,
    gen: u32,
}

impl ProbedWay {
    /// Way within the set (for callers that insert at the same way after
    /// evicting through the token).
    #[inline]
    pub fn way(self) -> usize {
        self.way as usize
    }
}

/// Token-returning form of [`LookupResult`]: what an insertion of a block
/// would need, with resident lines handed back as [`ProbedWay`] tokens so
/// the caller never re-probes.
#[derive(Debug, PartialEq, Eq)]
pub enum WayLookup {
    /// The block is already resident; the token addresses its line.
    Hit(ProbedWay),
    /// A free way is available.
    Free { way: usize },
    /// The set is full; the token addresses the pseudo-LRU victim line
    /// (evict through [`SetAssocCache::remove_at`], then insert at the
    /// same way).
    Victim(ProbedWay),
}

/// Tag-array sentinel for a vacant way. Block numbers are byte addresses
/// shifted right by the block bits, so `u64::MAX` can never be a real tag.
const EMPTY_TAG: BlockAddr = BlockAddr(u64::MAX);

/// A set-associative array of `sets × ways` lines.
///
/// Tags are mirrored into a packed side array: a [`Line`] is ~80 bytes
/// (64 of them block data), so probing through `lines` touches one
/// hardware cache line per way, while the packed `tags` vector fits a
/// whole 8-way set in a single one. Every lookup on the simulator's hot
/// path goes through [`SetAssocCache::probe`], which scans only `tags`.
///
/// `Hash` covers the complete replacement-relevant state (tags, data,
/// metadata, PLRU bits), so equal hashes mean equal future behaviour —
/// the model checker's state canonicalisation relies on this.
#[derive(Clone, Debug)]
pub struct SetAssocCache<M> {
    sets: usize,
    ways: usize,
    /// `tags[slot]` mirrors `lines[slot]`: the resident block, or
    /// [`EMPTY_TAG`] when the way is vacant.
    tags: Vec<BlockAddr>,
    lines: Vec<Option<Line<M>>>,
    plru: Vec<TreePlru>,
    /// One-entry probe memo `(block, way)`: legacy per-block entry points
    /// (probe → get → touch → get_mut) may still look the same block up
    /// several times per access, so remembering the last hit skips the
    /// tag scan on all but the first. Caches hits only; invalidated by
    /// [`Self::insert_at`] and [`Self::remove`]. Pure lookup state —
    /// excluded from `Hash`.
    probe_memo: std::cell::Cell<(BlockAddr, usize)>,
    /// Residency generation: bumped by every insertion/removal so stale
    /// [`ProbedWay`] tokens are caught by debug assertions. Excluded from
    /// `Hash`.
    gen: u32,
    /// Physical tag-lookup counter for tests: counts every public lookup
    /// entry point (`probe`/`get`/`get_mut`/`touch`/`lookup_for_insert`/
    /// `probe_way`/`lookup_way`/`remove`), memo hits included — the
    /// "exactly one physical lookup per access" tests rely on memo hits
    /// still counting as lookups. Excluded from `Hash`.
    #[cfg(debug_assertions)]
    phys_lookups: std::cell::Cell<u64>,
}

impl<M: std::hash::Hash> std::hash::Hash for SetAssocCache<M> {
    /// Manual impl skipping `tags`, which is derivable from `lines`:
    /// keeps hashes identical to the pre-split layout, so checker caches
    /// and fingerprints survive the data-layout change.
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.sets.hash(state);
        self.ways.hash(state);
        self.lines.hash(state);
        self.plru.hash(state);
    }
}

impl<M> SetAssocCache<M> {
    /// Creates a cache with the given geometry. `sets` and `ways` must be
    /// powers of two (`ways` ≤ 64).
    pub fn new(sets: usize, ways: usize) -> Self {
        assert!(sets.is_power_of_two(), "sets must be a power of two");
        assert!(
            ways.is_power_of_two() && (1..=64).contains(&ways),
            "ways must be a power of two in 1..=64"
        );
        Self {
            sets,
            ways,
            tags: vec![EMPTY_TAG; sets * ways],
            lines: (0..sets * ways).map(|_| None).collect(),
            plru: vec![TreePlru::new(); sets],
            probe_memo: std::cell::Cell::new((EMPTY_TAG, 0)),
            gen: 0,
            #[cfg(debug_assertions)]
            phys_lookups: std::cell::Cell::new(0),
        }
    }

    /// Builds a cache from a capacity in bytes and associativity, with
    /// 64-byte blocks — e.g. `from_capacity(32 * 1024, 2)` is the paper's
    /// L1 (256 sets × 2 ways).
    pub fn from_capacity(capacity_bytes: usize, ways: usize) -> Self {
        let blocks = capacity_bytes / crate::addr::BLOCK_BYTES;
        assert!(
            blocks.is_multiple_of(ways),
            "capacity not divisible by ways"
        );
        Self::new(blocks / ways, ways)
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.sets
    }

    /// Associativity.
    pub fn ways(&self) -> usize {
        self.ways
    }

    #[inline]
    fn set_of(&self, block: BlockAddr) -> usize {
        (block.index() as usize) & (self.sets - 1)
    }

    /// Set index of `block` under this geometry. Public so the directory
    /// can co-index its per-set MSHR tables with the cache array.
    #[inline]
    pub fn set_index(&self, block: BlockAddr) -> usize {
        self.set_of(block)
    }

    #[inline]
    fn slot(&self, set: usize, way: usize) -> usize {
        set * self.ways + way
    }

    /// Bumps the test-only physical-lookup counter. Called once per
    /// public lookup entry point, memo hits included.
    #[inline]
    fn count_lookup(&self) {
        #[cfg(debug_assertions)]
        self.phys_lookups.set(self.phys_lookups.get() + 1);
    }

    /// Physical tag lookups performed so far (tests only): every public
    /// lookup entry point counts one, memo hits included.
    #[cfg(debug_assertions)]
    pub fn phys_lookups(&self) -> u64 {
        self.phys_lookups.get()
    }

    /// Uncounted probe core: memo check, then one linear scan of the
    /// packed tag array (does not touch PLRU).
    #[inline]
    fn probe_slot(&self, block: BlockAddr) -> Option<usize> {
        let (memo_block, memo_way) = self.probe_memo.get();
        if memo_block == block {
            return Some(memo_way);
        }
        let base = self.set_of(block) * self.ways;
        let way = self.tags[base..base + self.ways]
            .iter()
            .position(|&t| t == block)?;
        self.probe_memo.set((block, way));
        Some(way)
    }

    #[inline]
    fn token(&self, set: usize, way: usize) -> ProbedWay {
        ProbedWay {
            set: set as u32,
            way: way as u32,
            gen: self.gen,
        }
    }

    /// Looks up `block`; returns its way on hit (does not touch PLRU).
    /// One linear scan of the packed tag array.
    #[inline]
    pub fn probe(&self, block: BlockAddr) -> Option<usize> {
        self.count_lookup();
        self.probe_slot(block)
    }

    /// Looks up `block` and returns a [`ProbedWay`] token for its line.
    /// One physical tag lookup; every `*_at` accessor on the token is
    /// lookup-free.
    #[inline]
    pub fn probe_way(&self, block: BlockAddr) -> Option<ProbedWay> {
        self.count_lookup();
        let way = self.probe_slot(block)?;
        Some(self.token(self.set_of(block), way))
    }

    #[inline]
    fn slot_of(&self, w: ProbedWay) -> usize {
        debug_assert_eq!(
            w.gen, self.gen,
            "stale ProbedWay token used across a residency change"
        );
        self.slot(w.set as usize, w.way as usize)
    }

    /// Immutable access through a probe token (no tag lookup).
    #[inline]
    pub fn line_at(&self, w: ProbedWay) -> &Line<M> {
        self.lines[self.slot_of(w)]
            .as_ref()
            .expect("ProbedWay token addresses a resident line")
    }

    /// Mutable access through a probe token (no tag lookup; does not
    /// touch PLRU). The same aliasing rule as [`SetAssocCache::get_mut`]
    /// applies: callers must not rewrite [`Line::block`].
    #[inline]
    pub fn line_at_mut(&mut self, w: ProbedWay) -> &mut Line<M> {
        let slot = self.slot_of(w);
        self.lines[slot]
            .as_mut()
            .expect("ProbedWay token addresses a resident line")
    }

    /// Marks the tokened line most-recently-used (no tag lookup).
    #[inline]
    pub fn touch_at(&mut self, w: ProbedWay) {
        debug_assert_eq!(
            w.gen, self.gen,
            "stale ProbedWay token used across a residency change"
        );
        self.plru[w.set as usize].touch(self.ways, w.way as usize);
    }

    /// Removes the tokened line (no tag lookup). Consumes the token's
    /// validity: the residency generation is bumped.
    pub fn remove_at(&mut self, w: ProbedWay) -> Line<M> {
        let slot = self.slot_of(w);
        let line = self.lines[slot]
            .take()
            .expect("ProbedWay token addresses a resident line");
        self.tags[slot] = EMPTY_TAG;
        if self.probe_memo.get().0 == line.block {
            self.probe_memo.set((EMPTY_TAG, 0));
        }
        self.gen = self.gen.wrapping_add(1);
        line
    }

    /// Immutable access to a resident line.
    #[inline]
    pub fn get(&self, block: BlockAddr) -> Option<&Line<M>> {
        let way = self.probe(block)?;
        self.lines[self.slot(self.set_of(block), way)].as_ref()
    }

    /// Mutable access to a resident line (does not touch PLRU; call
    /// [`SetAssocCache::touch`] for accesses that should update recency).
    ///
    /// Callers must not rewrite [`Line::block`] through the returned
    /// reference — residency changes go through [`SetAssocCache::insert_at`]
    /// and [`SetAssocCache::remove`], which keep the tag mirror in sync.
    #[inline]
    pub fn get_mut(&mut self, block: BlockAddr) -> Option<&mut Line<M>> {
        let way = self.probe(block)?;
        let slot = self.slot(self.set_of(block), way);
        self.lines[slot].as_mut()
    }

    /// Marks `block` most-recently-used. No-op if not resident.
    pub fn touch(&mut self, block: BlockAddr) {
        if let Some(way) = self.probe(block) {
            let set = self.set_of(block);
            self.plru[set].touch(self.ways, way);
        }
    }

    /// Uncounted classification core shared by [`Self::lookup_for_insert`]
    /// and [`Self::lookup_way`].
    fn classify_for_insert(&self, block: BlockAddr) -> LookupResult {
        let set = self.set_of(block);
        if let Some(way) = self.probe_slot(block) {
            return LookupResult::Hit { way };
        }
        let base = set * self.ways;
        if let Some(way) = self.tags[base..base + self.ways]
            .iter()
            .position(|&t| t == EMPTY_TAG)
        {
            return LookupResult::Free { way };
        }
        let way = self.plru[set].victim(self.ways);
        let victim = self.lines[self.slot(set, way)]
            .as_ref()
            .expect("full set has a line in every way")
            .block;
        LookupResult::Victim { way, block: victim }
    }

    /// Classifies what an insertion of `block` would need: hit, free way,
    /// or eviction of the PLRU victim.
    pub fn lookup_for_insert(&self, block: BlockAddr) -> LookupResult {
        self.count_lookup();
        self.classify_for_insert(block)
    }

    /// Token-returning form of [`Self::lookup_for_insert`]: one physical
    /// tag lookup classifying hit / free way / PLRU victim, with resident
    /// lines handed back as [`ProbedWay`] tokens.
    pub fn lookup_way(&self, block: BlockAddr) -> WayLookup {
        self.count_lookup();
        let set = self.set_of(block);
        match self.classify_for_insert(block) {
            LookupResult::Hit { way } => WayLookup::Hit(self.token(set, way)),
            LookupResult::Free { way } => WayLookup::Free { way },
            LookupResult::Victim { way, .. } => WayLookup::Victim(self.token(set, way)),
        }
    }

    /// Like [`SetAssocCache::lookup_for_insert`], but never proposes a
    /// victim for which `pinned` returns true (lines with in-flight
    /// transactions in the directory). Prefers the pseudo-LRU victim when
    /// eligible, otherwise any unpinned line. Returns `None` when the set
    /// is full and every line is pinned — the caller must stall.
    pub fn lookup_for_insert_excluding(
        &self,
        block: BlockAddr,
        pinned: impl Fn(BlockAddr) -> bool,
    ) -> Option<LookupResult> {
        match self.lookup_for_insert(block) {
            r @ (LookupResult::Hit { .. } | LookupResult::Free { .. }) => Some(r),
            LookupResult::Victim { way, block: victim } if !pinned(victim) => {
                Some(LookupResult::Victim { way, block: victim })
            }
            LookupResult::Victim { .. } => {
                let set = self.set_of(block);
                (0..self.ways).find_map(|w| {
                    let line = self.lines[self.slot(set, w)].as_ref()?;
                    (!pinned(line.block)).then_some(LookupResult::Victim {
                        way: w,
                        block: line.block,
                    })
                })
            }
        }
    }

    /// Token-returning form of [`Self::lookup_for_insert_excluding`]: one
    /// physical tag lookup, never proposing a pinned victim. `None` means
    /// the set is full and every line is pinned — the caller must stall.
    pub fn lookup_way_excluding(
        &self,
        block: BlockAddr,
        pinned: impl Fn(BlockAddr) -> bool,
    ) -> Option<WayLookup> {
        self.count_lookup();
        let set = self.set_of(block);
        match self.classify_for_insert(block) {
            LookupResult::Hit { way } => Some(WayLookup::Hit(self.token(set, way))),
            LookupResult::Free { way } => Some(WayLookup::Free { way }),
            LookupResult::Victim { way, block: victim } if !pinned(victim) => {
                Some(WayLookup::Victim(self.token(set, way)))
            }
            LookupResult::Victim { .. } => (0..self.ways).find_map(|w| {
                let line = self.lines[self.slot(set, w)].as_ref()?;
                (!pinned(line.block)).then_some(WayLookup::Victim(self.token(set, w)))
            }),
        }
    }

    /// Inserts (or replaces) a line for `block` at `way` and touches it.
    /// Returns the displaced line, if any.
    pub fn insert_at(
        &mut self,
        way: usize,
        block: BlockAddr,
        meta: M,
        data: BlockData,
    ) -> Option<Line<M>> {
        debug_assert!(block != EMPTY_TAG, "block collides with the tag sentinel");
        let set = self.set_of(block);
        let slot = self.slot(set, way);
        let old = self.lines[slot].replace(Line { block, meta, data });
        self.tags[slot] = block;
        // The displaced block (if any) no longer maps to this way; the
        // inserted one does.
        self.probe_memo.set((block, way));
        self.gen = self.gen.wrapping_add(1);
        self.plru[set].touch(self.ways, way);
        old
    }

    /// Removes `block` from the cache, returning its line.
    pub fn remove(&mut self, block: BlockAddr) -> Option<Line<M>> {
        let w = self.probe_way(block)?;
        Some(self.remove_at(w))
    }

    /// Iterates over all resident lines.
    pub fn iter(&self) -> impl Iterator<Item = &Line<M>> {
        self.lines.iter().filter_map(|l| l.as_ref())
    }

    /// Iterates mutably over all resident lines.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut Line<M>> {
        self.lines.iter_mut().filter_map(|l| l.as_mut())
    }

    /// Number of resident lines.
    pub fn occupancy(&self) -> usize {
        self.lines.iter().filter(|l| l.is_some()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blk(n: u64) -> BlockAddr {
        BlockAddr(n)
    }

    #[test]
    fn hit_free_victim_classification() {
        let mut c: SetAssocCache<u32> = SetAssocCache::new(4, 2);
        // Blocks 0, 4, 8 all map to set 0.
        assert_eq!(c.lookup_for_insert(blk(0)), LookupResult::Free { way: 0 });
        c.insert_at(0, blk(0), 1, BlockData::zeroed());
        assert_eq!(c.lookup_for_insert(blk(0)), LookupResult::Hit { way: 0 });
        assert_eq!(c.lookup_for_insert(blk(4)), LookupResult::Free { way: 1 });
        c.insert_at(1, blk(4), 2, BlockData::zeroed());
        // Set full; way 0 holds the older block 0.
        c.touch(blk(4));
        assert_eq!(
            c.lookup_for_insert(blk(8)),
            LookupResult::Victim {
                way: 0,
                block: blk(0)
            }
        );
    }

    #[test]
    fn from_capacity_matches_paper_geometry() {
        let l1: SetAssocCache<()> = SetAssocCache::from_capacity(32 * 1024, 2);
        assert_eq!(l1.sets(), 256);
        assert_eq!(l1.ways(), 2);
        let l2: SetAssocCache<()> = SetAssocCache::from_capacity(128 * 1024, 8);
        assert_eq!(l2.sets(), 256);
        assert_eq!(l2.ways(), 8);
    }

    #[test]
    fn insert_remove_round_trip() {
        let mut c: SetAssocCache<&'static str> = SetAssocCache::new(8, 2);
        let mut d = BlockData::zeroed();
        d.write_word(0, 8, 42);
        c.insert_at(0, blk(3), "meta", d);
        assert_eq!(c.get(blk(3)).unwrap().meta, "meta");
        assert_eq!(c.get(blk(3)).unwrap().data.read_word(0, 8), 42);
        let line = c.remove(blk(3)).unwrap();
        assert_eq!(line.block, blk(3));
        assert!(c.get(blk(3)).is_none());
        assert_eq!(c.occupancy(), 0);
    }

    #[test]
    fn different_sets_do_not_interfere() {
        let mut c: SetAssocCache<u8> = SetAssocCache::new(4, 2);
        for n in 0..4 {
            c.insert_at(0, blk(n), 0, BlockData::zeroed());
        }
        for n in 0..4 {
            assert!(c.get(blk(n)).is_some());
        }
        assert_eq!(c.occupancy(), 4);
    }

    #[test]
    fn lru_evicts_least_recent_in_two_way() {
        let mut c: SetAssocCache<u8> = SetAssocCache::new(1, 2);
        c.insert_at(0, blk(0), 0, BlockData::zeroed());
        c.insert_at(1, blk(1), 0, BlockData::zeroed());
        c.touch(blk(0)); // 1 is now LRU
        match c.lookup_for_insert(blk(2)) {
            LookupResult::Victim { block, .. } => assert_eq!(block, blk(1)),
            other => panic!("expected victim, got {other:?}"),
        }
    }

    #[test]
    fn excluding_lookup_skips_pinned_victims() {
        let mut c: SetAssocCache<u8> = SetAssocCache::new(1, 2);
        c.insert_at(0, blk(0), 0, BlockData::zeroed());
        c.insert_at(1, blk(1), 0, BlockData::zeroed());
        // PLRU victim is block 0; pin it and the other line is offered.
        c.touch(blk(1));
        match c.lookup_for_insert_excluding(blk(2), |b| b == blk(0)) {
            Some(LookupResult::Victim { block, .. }) => assert_eq!(block, blk(1)),
            other => panic!("unexpected {other:?}"),
        }
        // Everything pinned: stall.
        assert!(c.lookup_for_insert_excluding(blk(2), |_| true).is_none());
        // Hit and free results pass through untouched.
        assert_eq!(
            c.lookup_for_insert_excluding(blk(0), |_| true),
            Some(LookupResult::Hit { way: 0 })
        );
    }

    #[test]
    fn tag_mirror_stays_in_sync_with_lines() {
        let mut c: SetAssocCache<u8> = SetAssocCache::new(2, 2);
        // Exercise insert, replace-at-way, and remove; after each step the
        // packed tag probe must agree with a scan of the line array.
        let check = |c: &SetAssocCache<u8>| {
            for n in 0..8u64 {
                let by_tags = c.probe(blk(n));
                let by_lines = c.iter().any(|l| l.block == blk(n));
                assert_eq!(by_tags.is_some(), by_lines, "block {n}");
            }
        };
        c.insert_at(0, blk(0), 0, BlockData::zeroed());
        check(&c);
        c.insert_at(1, blk(2), 0, BlockData::zeroed());
        check(&c);
        // Replace the line at way 0 of set 0 with a different block.
        c.insert_at(0, blk(4), 0, BlockData::zeroed());
        check(&c);
        assert!(c.probe(blk(0)).is_none());
        c.remove(blk(4)).unwrap();
        check(&c);
        assert_eq!(c.lookup_for_insert(blk(6)), LookupResult::Free { way: 0 });
    }

    #[test]
    fn probe_memo_never_outlives_residency() {
        let mut c: SetAssocCache<u8> = SetAssocCache::new(1, 2);
        c.insert_at(0, blk(0), 0, BlockData::zeroed());
        // Warm the memo on block 0, then displace it at the same way.
        assert_eq!(c.probe(blk(0)), Some(0));
        c.insert_at(0, blk(1), 0, BlockData::zeroed());
        assert_eq!(c.probe(blk(0)), None);
        assert_eq!(c.probe(blk(1)), Some(0));
        // Warm the memo, remove, and make sure the memo dies with it.
        c.remove(blk(1)).unwrap();
        assert_eq!(c.probe(blk(1)), None);
        // Repeated probes of a resident block keep answering through the
        // memo after unrelated removals.
        c.insert_at(0, blk(2), 0, BlockData::zeroed());
        c.insert_at(1, blk(3), 0, BlockData::zeroed());
        assert_eq!(c.probe(blk(2)), Some(0));
        c.remove(blk(3)).unwrap();
        assert_eq!(c.probe(blk(2)), Some(0));
    }

    #[test]
    fn probed_way_accessors_round_trip() {
        let mut c: SetAssocCache<u32> = SetAssocCache::new(4, 2);
        c.insert_at(0, blk(0), 7, BlockData::zeroed());
        let w = c.probe_way(blk(0)).unwrap();
        assert_eq!(c.line_at(w).meta, 7);
        c.line_at_mut(w).meta = 9;
        c.line_at_mut(w).data.write_word(8, 4, 0x55);
        c.touch_at(w);
        assert_eq!(c.line_at(w).data.read_word(8, 4), 0x55);
        let line = c.remove_at(w);
        assert_eq!(line.block, blk(0));
        assert_eq!(line.meta, 9);
        assert!(c.probe_way(blk(0)).is_none());
    }

    #[test]
    fn lookup_way_classifies_like_lookup_for_insert() {
        let mut c: SetAssocCache<u32> = SetAssocCache::new(4, 2);
        assert!(matches!(c.lookup_way(blk(0)), WayLookup::Free { way: 0 }));
        c.insert_at(0, blk(0), 1, BlockData::zeroed());
        match c.lookup_way(blk(0)) {
            WayLookup::Hit(w) => assert_eq!(c.line_at(w).block, blk(0)),
            other => panic!("expected hit, got {other:?}"),
        }
        c.insert_at(1, blk(4), 2, BlockData::zeroed());
        c.touch(blk(4));
        // Set full; PLRU victim is the older block 0.
        match c.lookup_way(blk(8)) {
            WayLookup::Victim(w) => {
                assert_eq!(c.line_at(w).block, blk(0));
                let way = w.way();
                let line = c.remove_at(w);
                assert_eq!(line.block, blk(0));
                c.insert_at(way, blk(8), 3, BlockData::zeroed());
                assert!(c.get(blk(8)).is_some());
            }
            other => panic!("expected victim, got {other:?}"),
        }
    }

    #[cfg(debug_assertions)]
    #[test]
    fn phys_lookup_counter_counts_every_entry_point() {
        let mut c: SetAssocCache<u32> = SetAssocCache::new(4, 2);
        c.insert_at(0, blk(0), 0, BlockData::zeroed());
        let before = c.phys_lookups();
        // Each public entry point is one lookup — memo hits included.
        c.probe(blk(0));
        c.probe(blk(0));
        c.get(blk(0));
        c.get_mut(blk(0));
        c.touch(blk(0));
        c.lookup_for_insert(blk(0));
        let w = c.probe_way(blk(0)).unwrap();
        assert_eq!(c.phys_lookups() - before, 7);
        // Token accessors are lookup-free.
        c.line_at(w);
        c.line_at_mut(w);
        c.touch_at(w);
        c.remove_at(w);
        assert_eq!(c.phys_lookups() - before, 7);
    }

    #[test]
    fn get_mut_allows_in_place_update() {
        let mut c: SetAssocCache<u32> = SetAssocCache::new(2, 2);
        c.insert_at(0, blk(0), 7, BlockData::zeroed());
        c.get_mut(blk(0)).unwrap().data.write_word(8, 4, 0x55);
        c.get_mut(blk(0)).unwrap().meta = 9;
        assert_eq!(c.get(blk(0)).unwrap().data.read_word(8, 4), 0x55);
        assert_eq!(c.get(blk(0)).unwrap().meta, 9);
    }
}
