//! Sparse, byte-accurate main memory.
//!
//! The paper's machine has 2 GB of DDR3; the simulator backs it with a hash
//! map of touched blocks so address-space size costs nothing. Unwritten
//! memory reads as zero (gem5's functional memory behaves the same way).

use std::collections::HashMap;

use crate::addr::{Addr, BlockAddr, BLOCK_BYTES};
use crate::block::BlockData;

/// Sparse main-memory model with block-granularity timing accesses and
/// byte-granularity functional ("backdoor") accesses for loading inputs and
/// reading back results.
#[derive(Clone, Debug, Default)]
pub struct Dram {
    blocks: HashMap<u64, BlockData>,
}

impl Dram {
    /// Empty (all-zero) memory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reads a whole block (timing path: used by the memory controllers).
    pub fn read_block(&self, block: BlockAddr) -> BlockData {
        self.blocks.get(&block.index()).copied().unwrap_or_default()
    }

    /// Writes a whole block (timing path).
    pub fn write_block(&mut self, block: BlockAddr, data: BlockData) {
        self.blocks.insert(block.index(), data);
    }

    /// Functional byte write, used to load workload inputs before the
    /// simulation starts. Never touches timing or energy statistics.
    pub fn backdoor_write(&mut self, addr: Addr, bytes: &[u8]) {
        let mut a = addr;
        let mut remaining = bytes;
        while !remaining.is_empty() {
            let off = a.offset();
            let n = (BLOCK_BYTES - off).min(remaining.len());
            let block = self.blocks.entry(a.block().index()).or_default();
            block.as_bytes_mut()[off..off + n].copy_from_slice(&remaining[..n]);
            remaining = &remaining[n..];
            a = a.add(n as u64);
        }
    }

    /// Functional byte read, used to extract results after the simulation.
    pub fn backdoor_read(&self, addr: Addr, out: &mut [u8]) {
        let mut a = addr;
        let mut remaining: &mut [u8] = out;
        while !remaining.is_empty() {
            let off = a.offset();
            let n = (BLOCK_BYTES - off).min(remaining.len());
            let block = self.read_block(a.block());
            remaining[..n].copy_from_slice(&block.as_bytes()[off..off + n]);
            remaining = &mut remaining[n..];
            a = a.add(n as u64);
        }
    }

    /// Functional typed write helpers.
    pub fn backdoor_write_word(&mut self, addr: Addr, size: usize, value: u64) {
        assert!(addr.fits_in_block(size), "backdoor word crosses block");
        let block = self.blocks.entry(addr.block().index()).or_default();
        block.write_word(addr.offset(), size, value);
    }

    /// Functional typed read helper.
    pub fn backdoor_read_word(&self, addr: Addr, size: usize) -> u64 {
        assert!(addr.fits_in_block(size), "backdoor word crosses block");
        self.read_block(addr.block()).read_word(addr.offset(), size)
    }

    /// Canonical fingerprint of the memory image: FNV-1a over every
    /// non-zero block in address order. All-zero blocks hash the same as
    /// untouched ones, so two runs that produced the same bytes get the
    /// same fingerprint even when their writeback traffic (and thus the
    /// set of *touched* blocks) differed — exactly what the
    /// cross-protocol differential suite needs.
    pub fn image_fingerprint(&self) -> u64 {
        let mut keys: Vec<u64> = self
            .blocks
            .iter()
            .filter(|(_, b)| b.as_bytes().iter().any(|&x| x != 0))
            .map(|(&k, _)| k)
            .collect();
        keys.sort_unstable();
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |byte: u8| {
            h ^= byte as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        };
        for k in keys {
            for byte in k.to_le_bytes() {
                mix(byte);
            }
            for &byte in self.blocks[&k].as_bytes() {
                mix(byte);
            }
        }
        h
    }

    /// Number of blocks ever touched (for memory-footprint reporting).
    pub fn touched_blocks(&self) -> usize {
        self.blocks.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn untouched_memory_is_zero() {
        let d = Dram::new();
        assert_eq!(d.read_block(BlockAddr(123)), BlockData::zeroed());
        assert_eq!(d.backdoor_read_word(Addr(0x8000), 8), 0);
    }

    #[test]
    fn block_write_read_round_trip() {
        let mut d = Dram::new();
        let mut b = BlockData::zeroed();
        b.write_word(0, 8, 0xDEAD);
        d.write_block(BlockAddr(5), b);
        assert_eq!(d.read_block(BlockAddr(5)).read_word(0, 8), 0xDEAD);
    }

    #[test]
    fn backdoor_spans_block_boundaries() {
        let mut d = Dram::new();
        let payload: Vec<u8> = (0..200).map(|i| i as u8).collect();
        d.backdoor_write(Addr(0x1030), &payload); // straddles 4 blocks
        let mut out = vec![0u8; 200];
        d.backdoor_read(Addr(0x1030), &mut out);
        assert_eq!(out, payload);
        // And the surrounding bytes stayed zero.
        assert_eq!(d.backdoor_read_word(Addr(0x1028), 8), 0);
    }

    #[test]
    fn backdoor_word_helpers() {
        let mut d = Dram::new();
        d.backdoor_write_word(Addr(0x2004), 4, 0xABCD_EF01);
        assert_eq!(d.backdoor_read_word(Addr(0x2004), 4), 0xABCD_EF01);
        // Same data visible through the timing path.
        assert_eq!(
            d.read_block(Addr(0x2004).block()).read_word(4, 4),
            0xABCD_EF01
        );
    }

    #[test]
    fn touched_blocks_counts_unique() {
        let mut d = Dram::new();
        d.backdoor_write_word(Addr(0), 8, 1);
        d.backdoor_write_word(Addr(8), 8, 2); // same block
        d.backdoor_write_word(Addr(64), 8, 3); // next block
        assert_eq!(d.touched_blocks(), 2);
    }
}
