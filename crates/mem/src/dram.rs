//! Paged, byte-accurate main memory.
//!
//! The paper's machine has 2 GB of DDR3; the simulator backs it with a
//! two-level paged store: a page directory indexed by `block >> PAGE_SHIFT`
//! pointing at fixed-size pages of blocks, allocated on first touch.
//! Unwritten memory reads as zero (gem5's functional memory behaves the
//! same way). Compared to the former `HashMap<u64, BlockData>`, the timing
//! path is a shift + two array index operations with no hashing, and
//! blocks of one page are contiguous in memory, so streaming workloads hit
//! the host cache.

use crate::addr::{Addr, BlockAddr, BLOCK_BYTES};
use crate::block::BlockData;

/// Blocks per page (a 4 KiB page of 64-byte data plus a touched bitmap).
const PAGE_BLOCKS: usize = 64;
const PAGE_SHIFT: u32 = 6;
const PAGE_MASK: u64 = (PAGE_BLOCKS as u64) - 1;

/// One page of backing store. `touched` tracks which blocks have ever been
/// written (for footprint reporting); data starts zeroed.
#[derive(Clone, Debug)]
struct Page {
    touched: u64,
    blocks: [BlockData; PAGE_BLOCKS],
}

impl Page {
    fn new() -> Box<Self> {
        Box::new(Self {
            touched: 0,
            blocks: [BlockData::zeroed(); PAGE_BLOCKS],
        })
    }
}

/// Paged main-memory model with block-granularity timing accesses and
/// byte-granularity functional ("backdoor") accesses for loading inputs and
/// reading back results.
#[derive(Clone, Debug, Default)]
pub struct Dram {
    /// Page directory, indexed by page number; `None` pages read as zero.
    pages: Vec<Option<Box<Page>>>,
}

impl Dram {
    /// Empty (all-zero) memory.
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    fn split(block: BlockAddr) -> (usize, usize) {
        let idx = block.index();
        ((idx >> PAGE_SHIFT) as usize, (idx & PAGE_MASK) as usize)
    }

    #[inline]
    fn page_mut(&mut self, page: usize) -> &mut Page {
        if page >= self.pages.len() {
            self.pages.resize_with(page + 1, || None);
        }
        self.pages[page].get_or_insert_with(Page::new)
    }

    /// Reads a whole block (timing path: used by the memory controllers).
    #[inline]
    pub fn read_block(&self, block: BlockAddr) -> BlockData {
        let (page, slot) = Self::split(block);
        match self.pages.get(page) {
            Some(Some(p)) => p.blocks[slot],
            _ => BlockData::zeroed(),
        }
    }

    /// Writes a whole block (timing path).
    #[inline]
    pub fn write_block(&mut self, block: BlockAddr, data: BlockData) {
        let (page, slot) = Self::split(block);
        let p = self.page_mut(page);
        p.touched |= 1 << slot;
        p.blocks[slot] = data;
    }

    /// Functional byte write, used to load workload inputs before the
    /// simulation starts. Never touches timing or energy statistics.
    pub fn backdoor_write(&mut self, addr: Addr, bytes: &[u8]) {
        let mut a = addr;
        let mut remaining = bytes;
        while !remaining.is_empty() {
            let off = a.offset();
            let n = (BLOCK_BYTES - off).min(remaining.len());
            let (page, slot) = Self::split(a.block());
            let p = self.page_mut(page);
            p.touched |= 1 << slot;
            p.blocks[slot].as_bytes_mut()[off..off + n].copy_from_slice(&remaining[..n]);
            remaining = &remaining[n..];
            a = a.add(n as u64);
        }
    }

    /// Functional byte read, used to extract results after the simulation.
    pub fn backdoor_read(&self, addr: Addr, out: &mut [u8]) {
        let mut a = addr;
        let mut remaining: &mut [u8] = out;
        while !remaining.is_empty() {
            let off = a.offset();
            let n = (BLOCK_BYTES - off).min(remaining.len());
            let block = self.read_block(a.block());
            remaining[..n].copy_from_slice(&block.as_bytes()[off..off + n]);
            remaining = &mut remaining[n..];
            a = a.add(n as u64);
        }
    }

    /// Functional typed write helpers.
    pub fn backdoor_write_word(&mut self, addr: Addr, size: usize, value: u64) {
        assert!(addr.fits_in_block(size), "backdoor word crosses block");
        let (page, slot) = Self::split(addr.block());
        let p = self.page_mut(page);
        p.touched |= 1 << slot;
        p.blocks[slot].write_word(addr.offset(), size, value);
    }

    /// Functional typed read helper.
    pub fn backdoor_read_word(&self, addr: Addr, size: usize) -> u64 {
        assert!(addr.fits_in_block(size), "backdoor word crosses block");
        self.read_block(addr.block()).read_word(addr.offset(), size)
    }

    /// Canonical fingerprint of the memory image: FNV-1a over every
    /// non-zero block in address order. All-zero blocks hash the same as
    /// untouched ones, so two runs that produced the same bytes get the
    /// same fingerprint even when their writeback traffic (and thus the
    /// set of *touched* blocks) differed — exactly what the
    /// cross-protocol differential suite needs.
    pub fn image_fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |byte: u8| {
            h ^= byte as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        };
        for (page_no, page) in self.pages.iter().enumerate() {
            let Some(page) = page else { continue };
            for (slot, block) in page.blocks.iter().enumerate() {
                if block.as_bytes().iter().all(|&x| x == 0) {
                    continue;
                }
                let key = ((page_no as u64) << PAGE_SHIFT) | slot as u64;
                for byte in key.to_le_bytes() {
                    mix(byte);
                }
                for &byte in block.as_bytes() {
                    mix(byte);
                }
            }
        }
        h
    }

    /// Number of blocks ever touched (for memory-footprint reporting).
    pub fn touched_blocks(&self) -> usize {
        self.pages
            .iter()
            .flatten()
            .map(|p| p.touched.count_ones() as usize)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn untouched_memory_is_zero() {
        let d = Dram::new();
        assert_eq!(d.read_block(BlockAddr(123)), BlockData::zeroed());
        assert_eq!(d.backdoor_read_word(Addr(0x8000), 8), 0);
    }

    #[test]
    fn block_write_read_round_trip() {
        let mut d = Dram::new();
        let mut b = BlockData::zeroed();
        b.write_word(0, 8, 0xDEAD);
        d.write_block(BlockAddr(5), b);
        assert_eq!(d.read_block(BlockAddr(5)).read_word(0, 8), 0xDEAD);
    }

    #[test]
    fn backdoor_spans_block_boundaries() {
        let mut d = Dram::new();
        let payload: Vec<u8> = (0..200).map(|i| i as u8).collect();
        d.backdoor_write(Addr(0x1030), &payload); // straddles 4 blocks
        let mut out = vec![0u8; 200];
        d.backdoor_read(Addr(0x1030), &mut out);
        assert_eq!(out, payload);
        // And the surrounding bytes stayed zero.
        assert_eq!(d.backdoor_read_word(Addr(0x1028), 8), 0);
    }

    #[test]
    fn backdoor_word_helpers() {
        let mut d = Dram::new();
        d.backdoor_write_word(Addr(0x2004), 4, 0xABCD_EF01);
        assert_eq!(d.backdoor_read_word(Addr(0x2004), 4), 0xABCD_EF01);
        // Same data visible through the timing path.
        assert_eq!(
            d.read_block(Addr(0x2004).block()).read_word(4, 4),
            0xABCD_EF01
        );
    }

    #[test]
    fn touched_blocks_counts_unique() {
        let mut d = Dram::new();
        d.backdoor_write_word(Addr(0), 8, 1);
        d.backdoor_write_word(Addr(8), 8, 2); // same block
        d.backdoor_write_word(Addr(64), 8, 3); // next block
        assert_eq!(d.touched_blocks(), 2);
    }

    #[test]
    fn blocks_across_page_boundaries_are_independent() {
        let mut d = Dram::new();
        // Block 63 is the last slot of page 0, block 64 the first of page 1.
        let mut b = BlockData::zeroed();
        b.write_word(0, 8, 0x11);
        d.write_block(BlockAddr(63), b);
        b.write_word(0, 8, 0x22);
        d.write_block(BlockAddr(64), b);
        assert_eq!(d.read_block(BlockAddr(63)).read_word(0, 8), 0x11);
        assert_eq!(d.read_block(BlockAddr(64)).read_word(0, 8), 0x22);
        assert_eq!(d.touched_blocks(), 2);
    }

    #[test]
    fn fingerprint_is_order_independent_and_zero_blind() {
        let mut a = Dram::new();
        let mut b = Dram::new();
        let mut d1 = BlockData::zeroed();
        d1.write_word(0, 8, 7);
        let mut d2 = BlockData::zeroed();
        d2.write_word(8, 8, 9);
        a.write_block(BlockAddr(10), d1);
        a.write_block(BlockAddr(500), d2);
        b.write_block(BlockAddr(500), d2);
        b.write_block(BlockAddr(10), d1);
        // Writing an all-zero block does not perturb the fingerprint.
        b.write_block(BlockAddr(77), BlockData::zeroed());
        assert_eq!(a.image_fingerprint(), b.image_fingerprint());
    }
}
