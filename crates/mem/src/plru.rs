//! Tree pseudo-LRU replacement state, as used by the paper's L1 (2-way) and
//! L2 (8-way) caches.
//!
//! A binary tree of direction bits sits over the ways of a set: each access
//! flips the bits along the path to the accessed way to point *away* from
//! it; the victim is found by following the bits from the root. For 2 ways
//! this degenerates to true LRU (one bit); for 8 ways it is the classic
//! 7-bit tree-PLRU.

/// Tree-PLRU state for one cache set. Supports power-of-two associativity
/// up to 64.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct TreePlru {
    /// Tree bits, node 1 is the root (heap layout; index 0 unused).
    bits: u64,
}

impl TreePlru {
    /// Fresh state: victim search walks all-zero bits to way 0.
    pub fn new() -> Self {
        Self { bits: 0 }
    }

    #[inline]
    fn levels(ways: usize) -> u32 {
        debug_assert!(ways.is_power_of_two() && (1..=64).contains(&ways));
        ways.trailing_zeros()
    }

    /// Marks `way` as most-recently used in a set of `ways` ways.
    #[inline]
    pub fn touch(&mut self, ways: usize, way: usize) {
        debug_assert!(way < ways);
        let levels = Self::levels(ways);
        let mut node = 1usize;
        for level in (0..levels).rev() {
            let go_right = (way >> level) & 1 == 1;
            // Point the bit away from the accessed child.
            if go_right {
                self.bits &= !(1 << node); // 0 = "left is older"
            } else {
                self.bits |= 1 << node; // 1 = "right is older"
            }
            node = node * 2 + usize::from(go_right);
        }
    }

    /// Returns the pseudo-least-recently-used way of a set of `ways` ways.
    #[inline]
    pub fn victim(&self, ways: usize) -> usize {
        let levels = Self::levels(ways);
        let mut node = 1usize;
        let mut way = 0usize;
        for _ in 0..levels {
            let bit = (self.bits >> node) & 1;
            way = (way << 1) | bit as usize;
            node = node * 2 + bit as usize;
        }
        way
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_way_is_true_lru() {
        let mut p = TreePlru::new();
        p.touch(2, 0);
        assert_eq!(p.victim(2), 1);
        p.touch(2, 1);
        assert_eq!(p.victim(2), 0);
        p.touch(2, 0);
        assert_eq!(p.victim(2), 1);
    }

    #[test]
    fn victim_never_most_recent() {
        for ways in [2usize, 4, 8, 16] {
            let mut p = TreePlru::new();
            for i in 0..1000 {
                let w = (i * 7 + 3) % ways;
                p.touch(ways, w);
                assert_ne!(p.victim(ways), w, "ways={ways} touch={w}");
            }
        }
    }

    #[test]
    fn round_robin_touch_cycles_victims() {
        // Touching ways 0..8 in order leaves way 0 as the PLRU victim.
        let mut p = TreePlru::new();
        for w in 0..8 {
            p.touch(8, w);
        }
        assert_eq!(p.victim(8), 0);
    }

    #[test]
    fn eight_way_victim_avoids_recently_touched_half() {
        // Tree-PLRU guarantees the victim lies outside the most recently
        // touched subtree: touch only ways 0..4 and the victim must come
        // from ways 4..8, and vice versa.
        let mut p = TreePlru::new();
        for w in 0..4 {
            p.touch(8, w);
        }
        assert!(p.victim(8) >= 4, "victim {} in touched half", p.victim(8));
        let mut q = TreePlru::new();
        for w in 4..8 {
            q.touch(8, w);
        }
        assert!(q.victim(8) < 4, "victim {} in touched half", q.victim(8));
    }

    #[test]
    fn fresh_state_victim_is_zero() {
        assert_eq!(TreePlru::new().victim(8), 0);
        assert_eq!(TreePlru::new().victim(2), 0);
    }
}
