//! Property test: the set-associative cache behaves like a bounded map —
//! checked against a HashMap oracle under random operation sequences.

use ghostwriter_mem::{BlockAddr, BlockData, LookupResult, SetAssocCache};
use proptest::prelude::*;
use std::collections::HashMap;

#[derive(Debug, Clone)]
enum Op {
    Insert(u64, u64),
    Remove(u64),
    Touch(u64),
    WriteWord(u64, usize, u64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u64..64, any::<u64>()).prop_map(|(b, v)| Op::Insert(b, v)),
        (0u64..64).prop_map(Op::Remove),
        (0u64..64).prop_map(Op::Touch),
        (0u64..64, 0usize..8, any::<u64>()).prop_map(|(b, w, v)| Op::WriteWord(b, w * 8, v)),
    ]
}

proptest! {
    #[test]
    fn cache_matches_oracle(ops in proptest::collection::vec(op_strategy(), 1..200)) {
        let mut cache: SetAssocCache<u8> = SetAssocCache::new(4, 2);
        let mut oracle: HashMap<u64, BlockData> = HashMap::new();

        for op in ops {
            match op {
                Op::Insert(b, v) => {
                    let block = BlockAddr(b);
                    let mut data = BlockData::zeroed();
                    data.write_word(0, 8, v);
                    match cache.lookup_for_insert(block) {
                        LookupResult::Hit { way } | LookupResult::Free { way } => {
                            cache.insert_at(way, block, 0, data);
                        }
                        LookupResult::Victim { way, block: victim } => {
                            oracle.remove(&victim.index());
                            cache.insert_at(way, block, 0, data);
                        }
                    }
                    oracle.insert(b, data);
                }
                Op::Remove(b) => {
                    let c = cache.remove(BlockAddr(b)).map(|l| l.data);
                    let o = oracle.remove(&b);
                    prop_assert_eq!(c.is_some(), o.is_some());
                    if let (Some(c), Some(o)) = (c, o) {
                        prop_assert_eq!(c, o);
                    }
                }
                Op::Touch(b) => cache.touch(BlockAddr(b)),
                Op::WriteWord(b, off, v) => {
                    if let Some(line) = cache.get_mut(BlockAddr(b)) {
                        line.data.write_word(off, 8, v);
                        oracle.get_mut(&b).expect("oracle in sync").write_word(off, 8, v);
                    } else {
                        prop_assert!(!oracle.contains_key(&b));
                    }
                }
            }
            // Full-state agreement after every step.
            prop_assert_eq!(cache.occupancy(), oracle.len());
            for (b, data) in &oracle {
                let line = cache.get(BlockAddr(*b));
                prop_assert!(line.is_some(), "oracle block {} missing from cache", b);
                prop_assert_eq!(&line.unwrap().data, data);
            }
        }
    }

    /// A set never holds more lines than its associativity, and victims
    /// always come from the right set.
    #[test]
    fn victims_come_from_the_probed_set(blocks in proptest::collection::vec(0u64..256, 1..64)) {
        let mut cache: SetAssocCache<()> = SetAssocCache::new(8, 2);
        for b in blocks {
            let block = BlockAddr(b);
            match cache.lookup_for_insert(block) {
                LookupResult::Hit { .. } => {}
                LookupResult::Free { way } => {
                    cache.insert_at(way, block, (), BlockData::zeroed());
                }
                LookupResult::Victim { way, block: victim } => {
                    prop_assert_eq!(victim.index() % 8, b % 8, "victim from wrong set");
                    cache.remove(victim);
                    let way2 = match cache.lookup_for_insert(block) {
                        LookupResult::Free { way } => way,
                        r => return Err(TestCaseError::fail(format!("expected free way, got {r:?}"))),
                    };
                    prop_assert_eq!(way, way2);
                    cache.insert_at(way2, block, (), BlockData::zeroed());
                }
            }
        }
        prop_assert!(cache.occupancy() <= 16);
    }
}
