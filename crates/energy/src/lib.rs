//! Dynamic-energy model for the Ghostwriter CMP simulator.
//!
//! The paper models cache and DRAM energy with CACTI 6.0 and NoC energy
//! with DSENT. Neither tool is available as a Rust library, so this crate
//! substitutes *per-event energy constants* in the range those tools report
//! for the paper's 32 nm-class geometry (32 kB L1, 128 kB L2 bank, DDR3,
//! 16-byte-flit mesh router). The reported quantity in the paper — percent
//! dynamic energy *saved* — depends on the reduction in event counts, which
//! the simulator models exactly; the constants only set the relative weight
//! of the event classes. DESIGN.md §7.2 records this substitution.
//!
//! All values are picojoules per event.

/// Counts of energy-bearing events for one run, produced by the simulator.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EnergyEvents {
    /// L1 data-array reads (load hits, block reads for writeback/forward).
    pub l1_reads: u64,
    /// L1 data-array writes (stores, scribbles, line fills).
    pub l1_writes: u64,
    /// L1 tag-only probes (misses, invalidation lookups).
    pub l1_tag_probes: u64,
    /// L2 data-array reads.
    pub l2_reads: u64,
    /// L2 data-array writes.
    pub l2_writes: u64,
    /// L2 tag/directory probes.
    pub l2_tag_probes: u64,
    /// DRAM block reads.
    pub dram_reads: u64,
    /// DRAM block writes.
    pub dram_writes: u64,
    /// Flit × router traversals in the NoC.
    pub router_flits: u64,
    /// Flit × link traversals in the NoC.
    pub link_flit_hops: u64,
}

impl EnergyEvents {
    /// Element-wise sum.
    pub fn merge(&mut self, o: &EnergyEvents) {
        self.l1_reads += o.l1_reads;
        self.l1_writes += o.l1_writes;
        self.l1_tag_probes += o.l1_tag_probes;
        self.l2_reads += o.l2_reads;
        self.l2_writes += o.l2_writes;
        self.l2_tag_probes += o.l2_tag_probes;
        self.dram_reads += o.dram_reads;
        self.dram_writes += o.dram_writes;
        self.router_flits += o.router_flits;
        self.link_flit_hops += o.link_flit_hops;
    }
}

/// Per-event energy constants in picojoules.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EnergyModel {
    /// 32 kB 2-way L1: read / write / tag probe.
    pub l1_read_pj: f64,
    pub l1_write_pj: f64,
    pub l1_tag_pj: f64,
    /// 128 kB 8-way L2 bank: read / write / tag+directory probe.
    pub l2_read_pj: f64,
    pub l2_write_pj: f64,
    pub l2_tag_pj: f64,
    /// DDR3-1600, per 64-byte access.
    pub dram_read_pj: f64,
    pub dram_write_pj: f64,
    /// Per flit per router traversal (buffer + crossbar + arbitration).
    pub router_flit_pj: f64,
    /// Per flit per link traversal.
    pub link_flit_pj: f64,
}

impl Default for EnergyModel {
    /// CACTI/DSENT-class constants for the paper's geometry (see crate
    /// docs). Absolute values are representative, relative magnitudes are
    /// what matters for the reproduced figures.
    fn default() -> Self {
        Self {
            l1_read_pj: 50.0,
            l1_write_pj: 60.0,
            l1_tag_pj: 8.0,
            l2_read_pj: 220.0,
            l2_write_pj: 250.0,
            l2_tag_pj: 25.0,
            dram_read_pj: 15_000.0,
            dram_write_pj: 15_000.0,
            router_flit_pj: 75.0,
            link_flit_pj: 40.0,
        }
    }
}

/// Energy totals split the way the paper reports them (Fig. 9): the memory
/// hierarchy (L1 + L2 + DRAM) and the network.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct EnergyBreakdown {
    /// Memory-hierarchy dynamic energy, picojoules.
    pub memory_pj: f64,
    /// NoC dynamic energy, picojoules.
    pub network_pj: f64,
}

impl EnergyBreakdown {
    /// Combined total.
    pub fn total_pj(&self) -> f64 {
        self.memory_pj + self.network_pj
    }

    /// Percent saved relative to `baseline` (positive = this run cheaper),
    /// for the combined NoC + memory hierarchy as in the paper's Fig. 9.
    pub fn percent_saved_vs(&self, baseline: &EnergyBreakdown) -> f64 {
        if baseline.total_pj() == 0.0 {
            return 0.0;
        }
        (1.0 - self.total_pj() / baseline.total_pj()) * 100.0
    }
}

impl EnergyModel {
    /// Evaluates the model over a run's event counts.
    pub fn evaluate(&self, ev: &EnergyEvents) -> EnergyBreakdown {
        let memory_pj = ev.l1_reads as f64 * self.l1_read_pj
            + ev.l1_writes as f64 * self.l1_write_pj
            + ev.l1_tag_probes as f64 * self.l1_tag_pj
            + ev.l2_reads as f64 * self.l2_read_pj
            + ev.l2_writes as f64 * self.l2_write_pj
            + ev.l2_tag_probes as f64 * self.l2_tag_pj
            + ev.dram_reads as f64 * self.dram_read_pj
            + ev.dram_writes as f64 * self.dram_write_pj;
        let network_pj = ev.router_flits as f64 * self.router_flit_pj
            + ev.link_flit_hops as f64 * self.link_flit_pj;
        EnergyBreakdown {
            memory_pj,
            network_pj,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_events_zero_energy() {
        let e = EnergyModel::default().evaluate(&EnergyEvents::default());
        assert_eq!(e.total_pj(), 0.0);
    }

    #[test]
    fn evaluation_is_linear() {
        let m = EnergyModel::default();
        let ev = EnergyEvents {
            l1_reads: 10,
            l1_writes: 5,
            l2_reads: 2,
            dram_reads: 1,
            router_flits: 7,
            link_flit_hops: 3,
            ..Default::default()
        };
        let mut doubled = ev;
        doubled.merge(&ev);
        let e1 = m.evaluate(&ev);
        let e2 = m.evaluate(&doubled);
        assert!((e2.total_pj() - 2.0 * e1.total_pj()).abs() < 1e-9);
        assert!((e2.memory_pj - 2.0 * e1.memory_pj).abs() < 1e-9);
        assert!((e2.network_pj - 2.0 * e1.network_pj).abs() < 1e-9);
    }

    #[test]
    fn savings_math() {
        let base = EnergyBreakdown {
            memory_pj: 800.0,
            network_pj: 200.0,
        };
        let gw = EnergyBreakdown {
            memory_pj: 700.0,
            network_pj: 100.0,
        };
        assert!((gw.percent_saved_vs(&base) - 20.0).abs() < 1e-9);
        // Identical runs save nothing.
        assert!((base.percent_saved_vs(&base)).abs() < 1e-9);
    }

    #[test]
    fn relative_magnitudes_sensible() {
        // DRAM ≫ L2 ≫ L1 per access; router > link per flit.
        let m = EnergyModel::default();
        assert!(m.dram_read_pj > 10.0 * m.l2_read_pj);
        assert!(m.l2_read_pj > m.l1_read_pj);
        assert!(m.router_flit_pj > m.link_flit_pj);
    }

    #[test]
    fn merge_sums_all_fields() {
        let a = EnergyEvents {
            l1_reads: 1,
            l1_writes: 2,
            l1_tag_probes: 3,
            l2_reads: 4,
            l2_writes: 5,
            l2_tag_probes: 6,
            dram_reads: 7,
            dram_writes: 8,
            router_flits: 9,
            link_flit_hops: 10,
        };
        let mut b = a;
        b.merge(&a);
        assert_eq!(
            b,
            EnergyEvents {
                l1_reads: 2,
                l1_writes: 4,
                l1_tag_probes: 6,
                l2_reads: 8,
                l2_writes: 10,
                l2_tag_probes: 12,
                dram_reads: 14,
                dram_writes: 16,
                router_flits: 18,
                link_flit_hops: 20,
            }
        );
    }
}
