//! Coherence-traffic accounting.
//!
//! Every message the protocol sends is classified into one of the paper's
//! Fig. 8 buckets and its router/link traversals recorded; these feed both
//! the traffic-reduction figure and the DSENT-style network energy model.

use crate::mesh::{Mesh, NodeId};
use crate::{CONTROL_FLITS, DATA_FLITS};

/// The paper's Fig. 8 message classes.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum MessageKind {
    /// Read-share requests.
    Gets,
    /// Read-exclusive requests.
    Getx,
    /// Shared→exclusive permission upgrades.
    Upgrade,
    /// Block-data transfers (demand data, forwarded data, writeback data).
    Data,
    /// Everything else: INV, acks, forwards, PUTs, unblocks, memory
    /// messages.
    Other,
}

impl MessageKind {
    /// All classes in the paper's stacking order.
    pub const ALL: [MessageKind; 5] = [
        MessageKind::Other,
        MessageKind::Data,
        MessageKind::Gets,
        MessageKind::Upgrade,
        MessageKind::Getx,
    ];

    /// Flits in a message of this class.
    #[inline]
    pub fn flits(self) -> u64 {
        match self {
            MessageKind::Data => DATA_FLITS,
            _ => CONTROL_FLITS,
        }
    }

    /// Display label used by the figure harness.
    pub fn label(self) -> &'static str {
        match self {
            MessageKind::Gets => "GETS",
            MessageKind::Getx => "GETX",
            MessageKind::Upgrade => "UPGRADE",
            MessageKind::Data => "Data",
            MessageKind::Other => "Other",
        }
    }

    #[inline]
    fn idx(self) -> usize {
        match self {
            MessageKind::Gets => 0,
            MessageKind::Getx => 1,
            MessageKind::Upgrade => 2,
            MessageKind::Data => 3,
            MessageKind::Other => 4,
        }
    }
}

/// Accumulated network traffic for one simulation run.
#[derive(Clone, Debug, Default)]
pub struct TrafficStats {
    counts: [u64; 5],
    flit_hops: u64,
    router_flits: u64,
}

impl TrafficStats {
    /// Fresh, all-zero statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one message of `kind` routed from `src` to `dst` on `mesh`;
    /// returns the contention-free delivery latency in cycles.
    pub fn record(&mut self, mesh: &Mesh, kind: MessageKind, src: NodeId, dst: NodeId) -> u64 {
        let flits = kind.flits();
        // One route walk feeds all three derived quantities (XY routing
        // visits hops + 1 routers, see [`Mesh::routers_on_route`]).
        let hops = mesh.hops(src, dst);
        self.counts[kind.idx()] += 1;
        self.flit_hops += flits * hops;
        self.router_flits += flits * (hops + 1);
        mesh.latency_for_hops(hops)
    }

    /// Message count for one class.
    pub fn count(&self, kind: MessageKind) -> u64 {
        self.counts[kind.idx()]
    }

    /// Total messages of all classes.
    pub fn total_messages(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Total coherence *transactions* as the paper plots them in Fig. 8:
    /// the sum over all message classes (each message is one transaction
    /// edge in the protocol).
    pub fn total(&self) -> u64 {
        self.total_messages()
    }

    /// Flit·link-traversal count (drives link energy).
    pub fn flit_hops(&self) -> u64 {
        self.flit_hops
    }

    /// Flit·router-traversal count (drives router energy).
    pub fn router_flits(&self) -> u64 {
        self.router_flits
    }

    /// Reconstructs statistics from raw counters (the experiment
    /// engine's JSON deserializer). `counts` maps each class to its
    /// message count.
    pub fn from_raw(
        counts: impl Fn(MessageKind) -> u64,
        flit_hops: u64,
        router_flits: u64,
    ) -> Self {
        let mut t = TrafficStats::new();
        for kind in MessageKind::ALL {
            t.counts[kind.idx()] = counts(kind);
        }
        t.flit_hops = flit_hops;
        t.router_flits = router_flits;
        t
    }

    /// Merges another stats object into this one.
    pub fn merge(&mut self, other: &TrafficStats) {
        for i in 0..5 {
            self.counts[i] += other.counts[i];
        }
        self.flit_hops += other.flit_hops;
        self.router_flits += other.router_flits;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_accumulates_counts_and_latency() {
        let mesh = Mesh::with_paper_timing(4, 2);
        let mut t = TrafficStats::new();
        let lat = t.record(&mesh, MessageKind::Gets, NodeId(0), NodeId(3));
        assert_eq!(lat, mesh.latency(NodeId(0), NodeId(3)));
        assert_eq!(t.count(MessageKind::Gets), 1);
        assert_eq!(t.count(MessageKind::Getx), 0);
        // 3 hops × 1 flit.
        assert_eq!(t.flit_hops(), 3);
        assert_eq!(t.router_flits(), 4);
    }

    #[test]
    fn data_messages_cost_five_flits() {
        let mesh = Mesh::with_paper_timing(4, 2);
        let mut t = TrafficStats::new();
        t.record(&mesh, MessageKind::Data, NodeId(0), NodeId(1));
        assert_eq!(t.flit_hops(), DATA_FLITS);
        assert_eq!(t.router_flits(), 2 * DATA_FLITS);
    }

    #[test]
    fn local_message_costs_router_but_no_link() {
        let mesh = Mesh::with_paper_timing(2, 2);
        let mut t = TrafficStats::new();
        t.record(&mesh, MessageKind::Other, NodeId(2), NodeId(2));
        assert_eq!(t.flit_hops(), 0);
        assert_eq!(t.router_flits(), CONTROL_FLITS);
    }

    #[test]
    fn merge_sums_everything() {
        let mesh = Mesh::with_paper_timing(2, 2);
        let mut a = TrafficStats::new();
        let mut b = TrafficStats::new();
        a.record(&mesh, MessageKind::Getx, NodeId(0), NodeId(3));
        b.record(&mesh, MessageKind::Getx, NodeId(3), NodeId(0));
        b.record(&mesh, MessageKind::Upgrade, NodeId(1), NodeId(2));
        a.merge(&b);
        assert_eq!(a.count(MessageKind::Getx), 2);
        assert_eq!(a.count(MessageKind::Upgrade), 1);
        assert_eq!(a.total_messages(), 3);
    }

    #[test]
    fn all_classes_have_distinct_labels() {
        let labels: std::collections::HashSet<_> =
            MessageKind::ALL.iter().map(|k| k.label()).collect();
        assert_eq!(labels.len(), 5);
    }
}
