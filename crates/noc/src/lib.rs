//! Mesh network-on-chip model for the Ghostwriter CMP simulator.
//!
//! Reproduces the paper's Table 1 network: a 2-D mesh with dimension-order
//! (XY) routing, a 1-cycle router and a 1-cycle link per hop, and four
//! memory/directory controllers attached at the mesh corners.
//!
//! The model is *contention-free*: each message's latency is a pure
//! function of its route, and the router/link traversals it performs are
//! recorded as flit·hop counts that drive the DSENT-style energy model
//! (see `ghostwriter-energy`). DESIGN.md §7.4 documents this substitution
//! for gem5's Garnet.

pub mod mesh;
pub mod traffic;

pub use mesh::{Mesh, NodeId, RouteLinks};
pub use traffic::{MessageKind, TrafficStats};

/// Flits in a short control message (requests, invalidations, acks):
/// one 16-byte flit carries address + command.
pub const CONTROL_FLITS: u64 = 1;

/// Flits in a data-bearing message: 8-byte header + 64-byte block payload
/// in 16-byte flits.
pub const DATA_FLITS: u64 = 5;
