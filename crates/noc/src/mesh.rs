//! Mesh topology and XY routing.

/// A tile in the mesh. Every tile hosts a core + private L1 + one bank of
/// the shared L2 (with its slice of directory state); the four corner tiles
/// additionally host the memory controllers.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NodeId(pub usize);

/// A `width × height` 2-D mesh with dimension-order routing.
///
/// ```
/// use ghostwriter_noc::{Mesh, NodeId};
/// let mesh = Mesh::with_paper_timing(6, 4); // the paper's 24 tiles
/// assert_eq!(mesh.nodes(), 24);
/// assert_eq!(mesh.hops(NodeId(0), NodeId(23)), 8);
/// assert_eq!(mesh.corners().len(), 4);      // memory controllers
/// ```
#[derive(Clone, Debug)]
pub struct Mesh {
    width: usize,
    height: usize,
    router_cycles: u64,
    link_cycles: u64,
    /// `(x, y)` per node id. Meshes are tiny (tens of tiles), so a
    /// lookup table turns every `coords` call — several per routed
    /// message — from a div/mod pair into one load.
    xy: Vec<(u16, u16)>,
}

impl Mesh {
    /// Creates a mesh. `router_cycles`/`link_cycles` are the per-hop router
    /// and link traversal latencies (both 1 in the paper's Table 1).
    pub fn new(width: usize, height: usize, router_cycles: u64, link_cycles: u64) -> Self {
        assert!(width >= 1 && height >= 1, "mesh must be at least 1x1");
        let xy = (0..width * height)
            .map(|n| ((n % width) as u16, (n / width) as u16))
            .collect();
        Self {
            width,
            height,
            router_cycles,
            link_cycles,
            xy,
        }
    }

    /// The paper's configuration: 1-cycle router, 1-cycle link.
    pub fn with_paper_timing(width: usize, height: usize) -> Self {
        Self::new(width, height, 1, 1)
    }

    /// Picks mesh dimensions for `nodes` tiles: the most square factoring,
    /// preferring wider than tall (24 → 6×4).
    pub fn dims_for(nodes: usize) -> (usize, usize) {
        assert!(nodes >= 1);
        let mut best = (nodes, 1);
        let mut h = 1;
        while h * h <= nodes {
            if nodes.is_multiple_of(h) {
                best = (nodes / h, h);
            }
            h += 1;
        }
        best
    }

    /// Mesh width (x extent).
    pub fn width(&self) -> usize {
        self.width
    }

    /// Mesh height (y extent).
    pub fn height(&self) -> usize {
        self.height
    }

    /// Total tiles.
    pub fn nodes(&self) -> usize {
        self.width * self.height
    }

    /// (x, y) coordinates of a node.
    #[inline]
    pub fn coords(&self, node: NodeId) -> (usize, usize) {
        let (x, y) = self.xy[node.0];
        (x as usize, y as usize)
    }

    /// Node at (x, y).
    #[inline]
    pub fn node_at(&self, x: usize, y: usize) -> NodeId {
        debug_assert!(x < self.width && y < self.height);
        NodeId(y * self.width + x)
    }

    /// Manhattan hop count of the XY route from `src` to `dst`.
    #[inline]
    pub fn hops(&self, src: NodeId, dst: NodeId) -> u64 {
        let (sx, sy) = self.coords(src);
        let (dx, dy) = self.coords(dst);
        (sx.abs_diff(dx) + sy.abs_diff(dy)) as u64
    }

    /// Number of router traversals on the route (XY routing visits one
    /// router per tile on the path, including source and destination).
    #[inline]
    pub fn routers_on_route(&self, src: NodeId, dst: NodeId) -> u64 {
        self.hops(src, dst) + 1
    }

    /// Contention-free message latency from `src` to `dst` in cycles:
    /// one router traversal per visited tile plus one link per hop. A
    /// message to the local tile still pays one router traversal
    /// (injection/ejection through the local crossbar).
    #[inline]
    pub fn latency(&self, src: NodeId, dst: NodeId) -> u64 {
        self.latency_for_hops(self.hops(src, dst))
    }

    /// [`Mesh::latency`] for an already-computed hop count, so callers
    /// that also need the hop count (traffic accounting) pay for the
    /// route walk once.
    #[inline]
    pub fn latency_for_hops(&self, hops: u64) -> u64 {
        (hops + 1) * self.router_cycles + hops * self.link_cycles
    }

    /// The sequence of tiles an XY-routed message traverses, in order
    /// (x first, then y). Used for per-link traffic accounting and tests.
    pub fn route(&self, src: NodeId, dst: NodeId) -> Vec<NodeId> {
        let (sx, sy) = self.coords(src);
        let (dx, dy) = self.coords(dst);
        let mut path = vec![src];
        let mut x = sx;
        let mut y = sy;
        while x != dx {
            x = if dx > x { x + 1 } else { x - 1 };
            path.push(self.node_at(x, y));
        }
        while y != dy {
            y = if dy > y { y + 1 } else { y - 1 };
            path.push(self.node_at(x, y));
        }
        path
    }

    /// Dense id space for directed links: every node owns four outgoing
    /// slots (east, west, north, south), so a `Vec` of length
    /// [`Mesh::num_links`] indexes any link without hashing. Edge nodes
    /// leave their off-mesh slots unused — the table trades a few empty
    /// entries for O(1) allocation-free lookup on the contention path.
    pub fn num_links(&self) -> usize {
        self.nodes() * 4
    }

    /// Dense id of the directed link from `src` to an adjacent `dst`.
    ///
    /// # Panics
    /// Panics if `src` and `dst` are not mesh neighbours.
    pub fn link_id(&self, src: NodeId, dst: NodeId) -> usize {
        let (sx, sy) = self.coords(src);
        let (dx, dy) = self.coords(dst);
        let dir = match (dx as isize - sx as isize, dy as isize - sy as isize) {
            (1, 0) => 0,
            (-1, 0) => 1,
            (0, 1) => 2,
            (0, -1) => 3,
            _ => panic!("link_id: {src:?} and {dst:?} are not adjacent"),
        };
        src.0 * 4 + dir
    }

    /// Walks the XY route from `src` to `dst` as a stream of dense link
    /// ids — the allocation-free twin of [`Mesh::route`] for the
    /// per-message contention path (`route` builds a `Vec` of visited
    /// tiles; this yields one `usize` per hop and owns all its state).
    pub fn route_links(&self, src: NodeId, dst: NodeId) -> RouteLinks {
        let (x, y) = self.coords(src);
        let (tx, ty) = self.coords(dst);
        RouteLinks {
            width: self.width,
            x,
            y,
            tx,
            ty,
        }
    }

    /// The four corner tiles (hosting the memory controllers, mirroring the
    /// paper's "4 directory controllers at mesh corners").
    pub fn corners(&self) -> Vec<NodeId> {
        let mut cs = vec![
            self.node_at(0, 0),
            self.node_at(self.width - 1, 0),
            self.node_at(0, self.height - 1),
            self.node_at(self.width - 1, self.height - 1),
        ];
        cs.dedup();
        cs.sort();
        cs.dedup();
        cs
    }
}

/// Iterator over the dense link ids of one XY route, x-first then y.
/// Owns its position/target state by value so the caller can mutate
/// per-link tables while iterating.
#[derive(Clone, Debug)]
pub struct RouteLinks {
    width: usize,
    x: usize,
    y: usize,
    tx: usize,
    ty: usize,
}

impl Iterator for RouteLinks {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        let node = self.y * self.width + self.x;
        if self.x < self.tx {
            self.x += 1;
            Some(node * 4)
        } else if self.x > self.tx {
            self.x -= 1;
            Some(node * 4 + 1)
        } else if self.y < self.ty {
            self.y += 1;
            Some(node * 4 + 2)
        } else if self.y > self.ty {
            self.y -= 1;
            Some(node * 4 + 3)
        } else {
            None
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.x.abs_diff(self.tx) + self.y.abs_diff(self.ty);
        (n, Some(n))
    }
}

impl ExactSizeIterator for RouteLinks {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dims_prefer_square() {
        assert_eq!(Mesh::dims_for(24), (6, 4));
        assert_eq!(Mesh::dims_for(16), (4, 4));
        assert_eq!(Mesh::dims_for(8), (4, 2));
        assert_eq!(Mesh::dims_for(4), (2, 2));
        assert_eq!(Mesh::dims_for(1), (1, 1));
        assert_eq!(Mesh::dims_for(7), (7, 1));
    }

    #[test]
    fn coords_round_trip() {
        let m = Mesh::with_paper_timing(6, 4);
        for n in 0..24 {
            let (x, y) = m.coords(NodeId(n));
            assert_eq!(m.node_at(x, y), NodeId(n));
        }
    }

    #[test]
    fn hops_are_manhattan() {
        let m = Mesh::with_paper_timing(6, 4);
        assert_eq!(m.hops(m.node_at(0, 0), m.node_at(5, 3)), 8);
        assert_eq!(m.hops(m.node_at(2, 1), m.node_at(2, 1)), 0);
        assert_eq!(m.hops(m.node_at(1, 0), m.node_at(4, 0)), 3);
    }

    #[test]
    fn latency_paper_timing() {
        let m = Mesh::with_paper_timing(6, 4);
        // Local delivery: one router traversal.
        assert_eq!(m.latency(NodeId(0), NodeId(0)), 1);
        // One hop: 2 routers + 1 link = 3 cycles.
        assert_eq!(m.latency(m.node_at(0, 0), m.node_at(1, 0)), 3);
        // Corner to corner: 8 hops -> 9 routers + 8 links = 17 cycles.
        assert_eq!(m.latency(m.node_at(0, 0), m.node_at(5, 3)), 17);
    }

    #[test]
    fn route_is_x_then_y() {
        let m = Mesh::with_paper_timing(4, 4);
        let path = m.route(m.node_at(0, 0), m.node_at(2, 2));
        let expect: Vec<NodeId> = vec![
            m.node_at(0, 0),
            m.node_at(1, 0),
            m.node_at(2, 0),
            m.node_at(2, 1),
            m.node_at(2, 2),
        ];
        assert_eq!(path, expect);
    }

    #[test]
    fn route_length_matches_hops() {
        let m = Mesh::with_paper_timing(6, 4);
        for s in 0..24 {
            for d in 0..24 {
                let r = m.route(NodeId(s), NodeId(d));
                assert_eq!(r.len() as u64, m.hops(NodeId(s), NodeId(d)) + 1);
                assert_eq!(*r.first().unwrap(), NodeId(s));
                assert_eq!(*r.last().unwrap(), NodeId(d));
            }
        }
    }

    #[test]
    fn link_ids_are_dense_and_unique_per_directed_link() {
        // Every directed neighbour pair maps to a distinct id inside the
        // dense table.
        let m = Mesh::with_paper_timing(6, 4);
        let mut seen = vec![false; m.num_links()];
        for n in 0..m.nodes() {
            let (x, y) = m.coords(NodeId(n));
            let neighbours = [
                (x + 1, y, x + 1 < m.width()),
                (x.wrapping_sub(1), y, x > 0),
                (x, y + 1, y + 1 < m.height()),
                (x, y.wrapping_sub(1), y > 0),
            ];
            for (nx, ny, ok) in neighbours {
                if !ok {
                    continue;
                }
                let id = m.link_id(NodeId(n), m.node_at(nx, ny));
                assert!(id < m.num_links());
                assert!(!seen[id], "link id {id} assigned twice");
                seen[id] = true;
            }
        }
    }

    #[test]
    fn route_links_match_route_hops() {
        // For every pair, the link-id walk agrees hop-for-hop with the
        // allocating route() — each window maps to the same unique id,
        // and no id repeats within a route (XY routes are loop-free).
        let m = Mesh::with_paper_timing(6, 4);
        for s in 0..24 {
            for d in 0..24 {
                let route = m.route(NodeId(s), NodeId(d));
                let ids: Vec<usize> = m.route_links(NodeId(s), NodeId(d)).collect();
                assert_eq!(ids.len(), route.len() - 1);
                for (hop, &id) in route.windows(2).zip(&ids) {
                    assert_eq!(id, m.link_id(hop[0], hop[1]));
                }
                let mut sorted = ids.clone();
                sorted.sort_unstable();
                sorted.dedup();
                assert_eq!(sorted.len(), ids.len(), "route reused a link id");
            }
        }
    }

    #[test]
    #[should_panic(expected = "not adjacent")]
    fn link_id_rejects_non_neighbours() {
        let m = Mesh::with_paper_timing(4, 4);
        m.link_id(NodeId(0), NodeId(2));
    }

    #[test]
    fn corners_of_paper_mesh() {
        let m = Mesh::with_paper_timing(6, 4);
        assert_eq!(
            m.corners(),
            vec![NodeId(0), NodeId(5), NodeId(18), NodeId(23)]
        );
    }

    #[test]
    fn corners_degenerate_meshes() {
        assert_eq!(Mesh::with_paper_timing(1, 1).corners(), vec![NodeId(0)]);
        assert_eq!(
            Mesh::with_paper_timing(2, 1).corners(),
            vec![NodeId(0), NodeId(1)]
        );
        assert_eq!(
            Mesh::with_paper_timing(2, 2).corners(),
            vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)]
        );
    }
}
