//! Property tests for mesh routing.

use ghostwriter_noc::{Mesh, MessageKind, NodeId, TrafficStats};
use proptest::prelude::*;

fn mesh_strategy() -> impl Strategy<Value = Mesh> {
    (1usize..=8, 1usize..=8).prop_map(|(w, h)| Mesh::with_paper_timing(w, h))
}

proptest! {
    /// Routes start at the source, end at the destination, and take
    /// exactly `hops` links, each between mesh neighbours.
    #[test]
    fn routes_are_connected_neighbour_paths(mesh in mesh_strategy(), s in 0usize..64, d in 0usize..64) {
        let src = NodeId(s % mesh.nodes());
        let dst = NodeId(d % mesh.nodes());
        let route = mesh.route(src, dst);
        prop_assert_eq!(route[0], src);
        prop_assert_eq!(*route.last().unwrap(), dst);
        prop_assert_eq!(route.len() as u64, mesh.hops(src, dst) + 1);
        for hop in route.windows(2) {
            let (ax, ay) = mesh.coords(hop[0]);
            let (bx, by) = mesh.coords(hop[1]);
            prop_assert_eq!(ax.abs_diff(bx) + ay.abs_diff(by), 1, "non-neighbour hop");
        }
    }

    /// Hop counts are symmetric and satisfy the triangle inequality.
    #[test]
    fn hops_form_a_metric(mesh in mesh_strategy(), a in 0usize..64, b in 0usize..64, c in 0usize..64) {
        let (a, b, c) = (
            NodeId(a % mesh.nodes()),
            NodeId(b % mesh.nodes()),
            NodeId(c % mesh.nodes()),
        );
        prop_assert_eq!(mesh.hops(a, b), mesh.hops(b, a));
        prop_assert_eq!(mesh.hops(a, a), 0);
        prop_assert!(mesh.hops(a, c) <= mesh.hops(a, b) + mesh.hops(b, c));
    }

    /// XY routing is deterministic and dimension-ordered: the route
    /// never moves in Y before X is resolved.
    #[test]
    fn xy_routing_is_dimension_ordered(mesh in mesh_strategy(), s in 0usize..64, d in 0usize..64) {
        let src = NodeId(s % mesh.nodes());
        let dst = NodeId(d % mesh.nodes());
        let route = mesh.route(src, dst);
        let (dx, _) = mesh.coords(dst);
        let mut seen_y_move = false;
        for hop in route.windows(2) {
            let (ax, ay) = mesh.coords(hop[0]);
            let (bx, by) = mesh.coords(hop[1]);
            if ay != by {
                seen_y_move = true;
                prop_assert_eq!(ax, dx, "Y move before X resolved");
            }
            if ax != bx {
                prop_assert!(!seen_y_move, "X move after Y started");
            }
        }
    }

    /// Traffic accounting: total flit-hops equals the sum of per-message
    /// flits × hops, independent of recording order.
    #[test]
    fn traffic_is_order_independent(mesh in mesh_strategy(), msgs in proptest::collection::vec((0usize..64, 0usize..64, any::<bool>()), 1..32)) {
        let record_all = |order: &[(usize, usize, bool)]| {
            let mut t = TrafficStats::new();
            for &(s, d, data) in order {
                let kind = if data { MessageKind::Data } else { MessageKind::Gets };
                t.record(&mesh, kind, NodeId(s % mesh.nodes()), NodeId(d % mesh.nodes()));
            }
            (t.flit_hops(), t.router_flits(), t.total_messages())
        };
        let fwd = record_all(&msgs);
        let mut rev = msgs.clone();
        rev.reverse();
        prop_assert_eq!(fwd, record_all(&rev));
    }
}
