//! `gwcheck` — bounded exhaustive model checking of the coherence
//! protocol from the command line.
//!
//! Enumerates every message-delivery interleaving of every bounded
//! access program for a small configuration, checking the protocol
//! invariants after each step. Exits 1 with a shrunk, replayable
//! counterexample if anything is violated.
//!
//! ```text
//! gwcheck --cores 2 --blocks 1 --ops 2 --protocol mesi
//! gwcheck --protocol gw --gi-timeouts
//! gwcheck --protocol mesi --mutation skip-inv   # prove it catches bugs
//! ```

use ghostwriter_check::{sweep, Mutation, ProtocolKind};

const USAGE: &str = "\
gwcheck — bounded exhaustive model checker for the Ghostwriter protocol

USAGE:
    gwcheck [OPTIONS]

OPTIONS:
    --cores <N>          cores / L1s / directory banks   [default: 2]
    --blocks <N>         blocks in the address pool      [default: 1]
    --ops <N>            program steps per core          [default: 2]
    --protocol <P>       mesi | msi | gw (repeatable; when omitted, all
                         three protocols are swept)
    --gi-timeouts        interleave GI-timeout sweeps (gw only)
    --mutation <M>       seed a bug: skip-inv | drop-inv-ack
    -h, --help           print this help
";

struct Args {
    cores: usize,
    blocks: usize,
    ops: usize,
    protocols: Vec<ProtocolKind>,
    gi_timeouts: bool,
    mutation: Option<Mutation>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        cores: 2,
        blocks: 1,
        ops: 2,
        protocols: Vec::new(),
        gi_timeouts: false,
        mutation: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
        match arg.as_str() {
            "--cores" => {
                args.cores = value("--cores")?
                    .parse()
                    .map_err(|e| format!("--cores: {e}"))?
            }
            "--blocks" => {
                args.blocks = value("--blocks")?
                    .parse()
                    .map_err(|e| format!("--blocks: {e}"))?
            }
            "--ops" => args.ops = value("--ops")?.parse().map_err(|e| format!("--ops: {e}"))?,
            "--protocol" => {
                let p = value("--protocol")?;
                args.protocols.push(
                    ProtocolKind::parse(&p).ok_or_else(|| format!("unknown protocol {p:?}"))?,
                );
            }
            "--gi-timeouts" => args.gi_timeouts = true,
            "--mutation" => {
                let m = value("--mutation")?;
                args.mutation =
                    Some(Mutation::parse(&m).ok_or_else(|| format!("unknown mutation {m:?}"))?);
            }
            "-h" | "--help" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other:?} (try --help)")),
        }
    }
    if args.protocols.is_empty() {
        args.protocols = vec![
            ProtocolKind::Mesi,
            ProtocolKind::Msi,
            ProtocolKind::Ghostwriter,
        ];
    }
    if args.cores < 1 || args.blocks < 1 || args.ops < 1 {
        return Err("--cores, --blocks and --ops must be >= 1".into());
    }
    Ok(args)
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("gwcheck: {e}");
            std::process::exit(2);
        }
    };
    let mut failed = false;
    for &kind in &args.protocols {
        let gi = args.gi_timeouts && kind == ProtocolKind::Ghostwriter;
        let label = format!(
            "{kind:?} {}c/{}b ops={}{}{}",
            args.cores,
            args.blocks,
            args.ops,
            if gi { " +gi-timeouts" } else { "" },
            match args.mutation {
                Some(m) => format!(" +mutation({m:?})"),
                None => String::new(),
            },
        );
        let start = std::time::Instant::now();
        let report = sweep(kind, args.cores, args.blocks, args.ops, gi, args.mutation);
        let secs = start.elapsed().as_secs_f64();
        match &report.counterexample {
            None => {
                println!(
                    "PASS  {label}: {} programs, {} states, {} transitions{} in {secs:.2}s",
                    report.programs,
                    report.states,
                    report.transitions,
                    if report.truncated {
                        " (TRUNCATED — not exhaustive)"
                    } else {
                        ""
                    },
                );
                if report.truncated {
                    failed = true;
                }
            }
            Some((program, cex)) => {
                failed = true;
                println!(
                    "FAIL  {label}: violation after {} programs ({} states) in {secs:.2}s",
                    report.programs, report.states
                );
                println!("  program:");
                for (core, steps) in program.iter().enumerate() {
                    println!("    core {core}: {steps:?}");
                }
                println!("  shrunk counterexample ({} steps):", cex.trace.len());
                print!("{}", cex.render(args.cores));
            }
        }
    }
    std::process::exit(if failed { 1 } else { 0 });
}
