//! `gwcheck` — bounded exhaustive model checking of the coherence
//! protocol from the command line.
//!
//! Enumerates every message-delivery interleaving of every bounded
//! access program for a small configuration, checking the protocol
//! invariants after each step. Exits 1 with a shrunk, replayable
//! counterexample if anything is violated.
//!
//! ```text
//! gwcheck --cores 2 --blocks 1 --ops 2 --protocol mesi
//! gwcheck --protocol gw --gi-timeouts
//! gwcheck --protocol mesi --mutation skip-inv        # prove it catches bugs
//! gwcheck --protocol gw --gi-timeouts \
//!         --mutation delete-row:gi_timeout           # table-row deletion
//! gwcheck --require-coverage                          # CI coverage gate
//! ```

use ghostwriter_check::{sweep, Mutation, ProtocolKind};
use ghostwriter_core::{Coverage, Reach};

const USAGE: &str = "\
gwcheck — bounded exhaustive model checker for the Ghostwriter protocol

USAGE:
    gwcheck [OPTIONS]

OPTIONS:
    --cores <N>          cores / L1s / directory banks   [default: 2]
    --blocks <N>         blocks in the address pool      [default: 1]
    --ops <N>            program steps per core          [default: 2]
    --protocol <P>       mesi | msi | gw (repeatable; when omitted, all
                         three protocols are swept)
    --gi-timeouts        interleave GI-timeout sweeps (gw only)
    --mutation <M>       seed a bug: skip-inv | drop-inv-ack |
                         delete-row:<row> (delete a transition-table row
                         by its name from docs/protocol-table.md, e.g.
                         delete-row:gi_timeout)
    --require-coverage   after sweeping, also run the supplementary
                         gw ops=1 +gi-timeouts sweep, then exit 1 if any
                         checker-reachable table row went unexercised
    -h, --help           print this help

Every run ends with a transition-coverage summary — how many rows of the
shared L1/directory transition table (crates/core/src/proto.rs) the
explored state spaces exercised.
";

struct Args {
    cores: usize,
    blocks: usize,
    ops: usize,
    protocols: Vec<ProtocolKind>,
    gi_timeouts: bool,
    mutation: Option<Mutation>,
    require_coverage: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        cores: 2,
        blocks: 1,
        ops: 2,
        protocols: Vec::new(),
        gi_timeouts: false,
        mutation: None,
        require_coverage: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
        match arg.as_str() {
            "--cores" => {
                args.cores = value("--cores")?
                    .parse()
                    .map_err(|e| format!("--cores: {e}"))?
            }
            "--blocks" => {
                args.blocks = value("--blocks")?
                    .parse()
                    .map_err(|e| format!("--blocks: {e}"))?
            }
            "--ops" => args.ops = value("--ops")?.parse().map_err(|e| format!("--ops: {e}"))?,
            "--protocol" => {
                let p = value("--protocol")?;
                args.protocols.push(
                    ProtocolKind::parse(&p).ok_or_else(|| format!("unknown protocol {p:?}"))?,
                );
            }
            "--gi-timeouts" => args.gi_timeouts = true,
            "--require-coverage" => args.require_coverage = true,
            "--mutation" => {
                let m = value("--mutation")?;
                args.mutation =
                    Some(Mutation::parse(&m).ok_or_else(|| format!("unknown mutation {m:?}"))?);
            }
            "-h" | "--help" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other:?} (try --help)")),
        }
    }
    if args.protocols.is_empty() {
        args.protocols = vec![
            ProtocolKind::Mesi,
            ProtocolKind::Msi,
            ProtocolKind::Ghostwriter,
        ];
    }
    if args.cores < 1 || args.blocks < 1 || args.ops < 1 {
        return Err("--cores, --blocks and --ops must be >= 1".into());
    }
    Ok(args)
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("gwcheck: {e}");
            std::process::exit(2);
        }
    };
    let mut failed = false;
    let mut coverage = Coverage::default();
    // One (protocol, ops, gi-timeouts) sweep cell per requested protocol;
    // --require-coverage appends the supplementary gw ops=2 sweep with
    // timeout interleavings, since the GI-timeout row only fires in
    // schedules that form a GI line (two ops on the victim core) and
    // then fire the sweep.
    let mut cells: Vec<(ProtocolKind, usize, bool)> = args
        .protocols
        .iter()
        .map(|&kind| {
            let gi = args.gi_timeouts && kind == ProtocolKind::Ghostwriter;
            (kind, args.ops, gi)
        })
        .collect();
    if args.require_coverage && !cells.contains(&(ProtocolKind::Ghostwriter, 2, true)) {
        cells.push((ProtocolKind::Ghostwriter, 2, true));
    }
    for (kind, ops, gi) in cells {
        let label = format!(
            "{kind:?} {}c/{}b ops={}{}{}",
            args.cores,
            args.blocks,
            ops,
            if gi { " +gi-timeouts" } else { "" },
            match args.mutation {
                Some(m) => format!(" +mutation({m:?})"),
                None => String::new(),
            },
        );
        let start = std::time::Instant::now();
        let report = sweep(kind, args.cores, args.blocks, ops, gi, args.mutation);
        let secs = start.elapsed().as_secs_f64();
        coverage.merge(&report.coverage);
        match &report.counterexample {
            None => {
                println!(
                    "PASS  {label}: {} programs, {} states, {} transitions{} in {secs:.2}s",
                    report.programs,
                    report.states,
                    report.transitions,
                    if report.truncated {
                        " (TRUNCATED — not exhaustive)"
                    } else {
                        ""
                    },
                );
                if report.truncated {
                    failed = true;
                }
            }
            Some((program, cex)) => {
                failed = true;
                println!(
                    "FAIL  {label}: violation after {} programs ({} states) in {secs:.2}s",
                    report.programs, report.states
                );
                println!("  program:");
                for (core, steps) in program.iter().enumerate() {
                    println!("    core {core}: {steps:?}");
                }
                println!("  shrunk counterexample ({} steps):", cex.trace.len());
                print!("{}", cex.render(args.cores));
            }
        }
    }
    let (l1_hit, l1_total) = coverage.l1_reached();
    let (dir_hit, dir_total) = coverage.dir_reached();
    println!(
        "coverage: L1 {l1_hit}/{l1_total} rows, directory {dir_hit}/{dir_total} rows \
         (excluding defensive rows; see docs/protocol-table.md)"
    );
    let uncovered = coverage.unreached(Reach::Check);
    if !uncovered.is_empty() {
        println!("  checker-reachable rows not exercised: {uncovered:?}");
        if args.require_coverage {
            println!("FAIL  --require-coverage: the sweep must reach every checker-reachable row");
            failed = true;
        }
    } else if args.require_coverage {
        println!("PASS  --require-coverage: every checker-reachable row exercised");
    }
    std::process::exit(if failed { 1 } else { 0 });
}
