//! `gwcheck` — bounded exhaustive model checking of the coherence
//! protocol from the command line.
//!
//! Sweeps run on the sharded parallel engine
//! ([`ghostwriter_check::shard`]): the unified interleaving space is
//! split at a frontier depth into independent subtree shards, executed
//! on a work-stealing pool, cached content-addressed under
//! `results/cache/check/`, and merged deterministically — the printed
//! report (and its fingerprint) is byte-identical for any `--jobs`
//! value and for cold vs warm caches. Exits 1 with a shrunk,
//! replayable counterexample if anything is violated.
//!
//! ```text
//! gwcheck --cores 2 --blocks 1 --ops 2 --protocol mesi
//! gwcheck --cores 3 --blocks 2 --jobs 8            # the deep sweep
//! gwcheck --protocol gw --gi-timeouts
//! gwcheck --protocol mesi --mutation skip-inv      # prove it catches bugs
//! gwcheck --protocol gw --gi-timeouts \
//!         --mutation delete-row:gi_timeout         # table-row deletion
//! gwcheck --require-coverage                       # CI coverage gate
//! gwcheck --jobs 8 --expect-cached                 # CI warm fast path
//! gwcheck --protocol mesi --replay i0:0s,d0>2,...  # replay a printed trace
//! ```

use std::io::Write;

use ghostwriter_check::{
    decode_trace, run_sweep, shard::Space, Mutation, ProtocolKind, ShardOptions, SweepSpec,
};
use ghostwriter_core::{Coverage, Json, Reach};

const USAGE: &str = "\
gwcheck — bounded exhaustive model checker for the Ghostwriter protocol

USAGE:
    gwcheck [OPTIONS]

SWEEP OPTIONS:
    --cores <N>          cores / L1s / directory banks   [default: 2]
    --blocks <N>         blocks in the address pool      [default: 1]
    --ops <N>            program steps per core          [default: 2]
    --protocol <P>       mesi | msi | moesi | mosi | mesif | gw |
                         gw-moesi (repeatable; when omitted, every
                         protocol is swept)
    --gi-timeouts        interleave GI-timeout sweeps (gw only)
    --tight-l1           single-way L1: force evictions/recalls into
                         the explored space
    --mutation <M>       seed a bug: skip-inv | drop-inv-ack |
                         delete-row:<row> (delete a transition-table row
                         by its name from docs/protocol-table.md, e.g.
                         delete-row:gi_timeout)
    --fault-budget <K>   bounded-fault mode: enable the recovery rows
                         and add up to K message faults (drop/duplicate/
                         corrupt on the unreliable virtual channel) as
                         explicit schedule actions, proving every
                         <= K-fault interleaving still completes
                         [default: 0 — faults off]
    --require-coverage   after sweeping, also run the supplementary
                         gw ops=2 +gi-timeouts sweep, then exit 1 if any
                         checker-reachable table row went unexercised

PARALLELISM / CACHING:
    --jobs <N>           shard worker threads [default: available cores];
                         reports are byte-identical for every value
    --shard-depth <D>    frontier split depth [default: auto — deepen
                         until >= 48 shard roots, cap 4]
    --no-cache           bypass the shard cache (no lookups, no stores)
    --expect-cached      exit 3 if any shard actually searched (CI
                         warm-pass check)
    --report <FILE>      write the merged reports as canonical JSON

REPLAY:
    --replay <TRACE>     replay a comma-joined action trace (as printed
                         under `replay:` in a failure report) against
                         the single configured sweep cell; exits 1 if
                         the failure reproduces, 0 if the trace is clean

    -h, --help           print this help

Every sweep ends with a transition-coverage summary and a report
fingerprint; `--jobs 1` and `--jobs N` print identical fingerprints.
";

struct Args {
    cores: usize,
    blocks: usize,
    ops: usize,
    protocols: Vec<ProtocolKind>,
    gi_timeouts: bool,
    tight_l1: bool,
    mutation: Option<Mutation>,
    fault_budget: usize,
    require_coverage: bool,
    jobs: usize,
    shard_depth: Option<usize>,
    use_cache: bool,
    expect_cached: bool,
    report: Option<String>,
    replay: Option<String>,
}

fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        cores: 2,
        blocks: 1,
        ops: 2,
        protocols: Vec::new(),
        gi_timeouts: false,
        tight_l1: false,
        mutation: None,
        fault_budget: 0,
        require_coverage: false,
        jobs: default_jobs(),
        shard_depth: None,
        use_cache: true,
        expect_cached: false,
        report: None,
        replay: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
        match arg.as_str() {
            "--cores" => {
                args.cores = value("--cores")?
                    .parse()
                    .map_err(|e| format!("--cores: {e}"))?
            }
            "--blocks" => {
                args.blocks = value("--blocks")?
                    .parse()
                    .map_err(|e| format!("--blocks: {e}"))?
            }
            "--ops" => args.ops = value("--ops")?.parse().map_err(|e| format!("--ops: {e}"))?,
            "--protocol" => {
                let p = value("--protocol")?;
                args.protocols.push(
                    ProtocolKind::parse(&p).ok_or_else(|| format!("unknown protocol {p:?}"))?,
                );
            }
            "--gi-timeouts" => args.gi_timeouts = true,
            "--tight-l1" => args.tight_l1 = true,
            "--require-coverage" => args.require_coverage = true,
            "--mutation" => {
                let m = value("--mutation")?;
                args.mutation =
                    Some(Mutation::parse(&m).ok_or_else(|| format!("unknown mutation {m:?}"))?);
            }
            "--fault-budget" => {
                args.fault_budget = value("--fault-budget")?
                    .parse()
                    .map_err(|e| format!("--fault-budget: {e}"))?;
                if args.fault_budget > 15 {
                    return Err("--fault-budget must be <= 15".into());
                }
            }
            "--jobs" => {
                args.jobs = value("--jobs")?
                    .parse()
                    .map_err(|e| format!("--jobs: {e}"))?;
                if args.jobs == 0 {
                    return Err("--jobs must be >= 1".into());
                }
            }
            "--shard-depth" => {
                args.shard_depth = Some(
                    value("--shard-depth")?
                        .parse()
                        .map_err(|e| format!("--shard-depth: {e}"))?,
                )
            }
            "--no-cache" => args.use_cache = false,
            "--expect-cached" => args.expect_cached = true,
            "--report" => args.report = Some(value("--report")?),
            "--replay" => args.replay = Some(value("--replay")?),
            "-h" | "--help" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other:?} (try --help)")),
        }
    }
    if args.protocols.is_empty() {
        args.protocols = ProtocolKind::ALL.to_vec();
    }
    if args.cores < 1 || args.blocks < 1 || args.ops < 1 {
        return Err("--cores, --blocks and --ops must be >= 1".into());
    }
    Ok(args)
}

fn spec_for(args: &Args, kind: ProtocolKind, ops: usize, gi: bool) -> SweepSpec {
    SweepSpec {
        gi_timeouts: gi,
        mutation: args.mutation,
        tight_l1: args.tight_l1,
        fault_budget: args.fault_budget,
        ..SweepSpec::new(kind, args.cores, args.blocks, ops)
    }
}

/// `gwcheck --replay`: decode and replay one trace against the single
/// configured cell. Exit 1 = failure reproduced, 0 = clean trace.
fn run_replay(args: &Args, text: &str) -> i32 {
    if args.protocols.len() != 1 {
        eprintln!("gwcheck: --replay needs exactly one --protocol");
        return 2;
    }
    let Some(trace) = decode_trace(text) else {
        eprintln!("gwcheck: malformed --replay trace {text:?}");
        return 2;
    };
    let spec = spec_for(
        args,
        args.protocols[0],
        args.ops,
        args.gi_timeouts
            && matches!(
                args.protocols[0],
                ProtocolKind::Ghostwriter | ProtocolKind::GhostwriterMoesi
            ),
    );
    let space = Space::new(&spec);
    match space.replay(&trace) {
        Some(failure) => {
            println!("REPRODUCED  {}: {failure}", spec.label());
            1
        }
        None => {
            println!("CLEAN  {}: trace does not fail", spec.label());
            0
        }
    }
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("gwcheck: {e}");
            std::process::exit(2);
        }
    };
    if let Some(trace) = &args.replay {
        std::process::exit(run_replay(&args, trace));
    }

    let opts = ShardOptions {
        jobs: args.jobs,
        shard_depth: args.shard_depth,
        use_cache: args.use_cache,
        progress: true,
        ..Default::default()
    };

    let mut failed = false;
    let mut executed_shards = 0usize;
    let mut coverage = Coverage::default();
    let mut report_docs: Vec<Json> = Vec::new();
    // One (protocol, ops, gi-timeouts) sweep cell per requested protocol;
    // --require-coverage appends the supplementary gw ops=2 sweep with
    // timeout interleavings, since the GI-timeout row only fires in
    // schedules that form a GI line (two ops on the victim core) and
    // then fire the sweep.
    let mut cells: Vec<(ProtocolKind, usize, bool)> = args
        .protocols
        .iter()
        .map(|&kind| {
            let gi = args.gi_timeouts
                && matches!(
                    kind,
                    ProtocolKind::Ghostwriter | ProtocolKind::GhostwriterMoesi
                );
            (kind, args.ops, gi)
        })
        .collect();
    if args.require_coverage && !cells.contains(&(ProtocolKind::Ghostwriter, 2, true)) {
        cells.push((ProtocolKind::Ghostwriter, 2, true));
    }
    for (kind, ops, gi) in cells {
        let spec = spec_for(&args, kind, ops, gi);
        let label = spec.label();
        let (outcome, log) = run_sweep(&spec, &opts);
        let secs = log.wall_ms as f64 / 1000.0;
        executed_shards += log.executed;
        coverage.merge(&outcome.coverage);
        match &outcome.counterexample {
            None => {
                println!(
                    "PASS  {label}: {} shards (depth {}), {} states, {} transitions{} \
                     in {secs:.2}s ({} cached, {} searched)",
                    outcome.shards,
                    outcome.shard_depth,
                    outcome.states,
                    outcome.transitions,
                    if outcome.truncated {
                        " (TRUNCATED — not exhaustive)"
                    } else {
                        ""
                    },
                    log.cache_hits,
                    log.executed,
                );
                if outcome.truncated {
                    failed = true;
                }
            }
            Some(shrunk) => {
                failed = true;
                println!(
                    "FAIL  {label}: violation ({} shards, {} states) in {secs:.2}s",
                    outcome.shards, outcome.states
                );
                if let Some(raw) = &outcome.raw_counterexample {
                    if raw.prefix_len > 0 {
                        println!(
                            "  found in shard {} (search trace {} steps):",
                            ghostwriter_check::encode_trace(&raw.trace[..raw.prefix_len]),
                            raw.trace.len(),
                        );
                    }
                }
                println!("  shrunk counterexample ({} steps):", shrunk.trace.len());
                print!("{}", shrunk.describe(&spec));
            }
        }
        println!("fingerprint: {}", outcome.fingerprint().hex());
        report_docs.push(outcome.to_json());
    }
    let (l1_hit, l1_total) = coverage.l1_reached();
    let (dir_hit, dir_total) = coverage.dir_reached();
    println!(
        "coverage: L1 {l1_hit}/{l1_total} rows, directory {dir_hit}/{dir_total} rows \
         (excluding defensive rows; see docs/protocol-table.md)"
    );
    let uncovered = coverage.unreached(Reach::Check);
    if !uncovered.is_empty() {
        println!("  checker-reachable rows not exercised: {uncovered:?}");
        if args.require_coverage {
            println!("FAIL  --require-coverage: the sweep must reach every checker-reachable row");
            failed = true;
        }
    } else if args.require_coverage {
        println!("PASS  --require-coverage: every checker-reachable row exercised");
    }
    if let Some(path) = &args.report {
        let doc = Json::Arr(report_docs);
        let write =
            std::fs::File::create(path).and_then(|mut f| f.write_all(doc.to_pretty().as_bytes()));
        if let Err(e) = write {
            eprintln!("gwcheck: cannot write {path}: {e}");
            failed = true;
        }
    }
    if args.expect_cached && executed_shards > 0 {
        eprintln!("gwcheck: --expect-cached but {executed_shards} shard(s) searched");
        std::process::exit(3);
    }
    std::process::exit(if failed { 1 } else { 0 });
}
