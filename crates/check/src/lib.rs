//! Bounded, exhaustive model checker for the MESI/MSI + GS/GI protocol.
//!
//! Where the random walker in `ghostwriter_core::tester` samples one
//! message interleaving per seed, this checker enumerates *every*
//! interleaving of a small configuration — 2–3 cores, 1–2 blocks,
//! bounded per-core access programs — subject only to the per-(src, dst)
//! FIFO ordering the real NoC guarantees. It drives the *real*
//! [`ghostwriter_core::l1::L1Cache`] and [`ghostwriter_core::dir::DirBank`]
//! controllers through the shared [`ghostwriter_core::harness::System`];
//! there is no re-specification of the protocol that could drift from
//! the implementation.
//!
//! The search is a depth-first enumeration with visited-set pruning on a
//! canonical state fingerprint (L1 states + directory entries + in-flight
//! message channels + oracle bookkeeping; see [`System::fingerprint`]).
//! Every transition re-checks the any-time invariants (SWMR, Ghostwriter
//! containment, the value oracle, the scribe error bound); every
//! terminal state is either quiescent — and then checked against the
//! directory-accuracy and data-value invariants — or reported as a
//! deadlock.
//!
//! On violation the checker emits a [`Counterexample`]: the action trace
//! from the initial state, greedily shrunk ([`Checker::shrink`]) and
//! deterministically replayable ([`Checker::replay`]) so a failure
//! reproduces as a plain `#[test]`. [`Mutation`] fault injection
//! (dropping or forging protocol messages in the harness network)
//! exists to prove the checker can actually catch protocol bugs.

use std::collections::HashSet;
use std::panic::{catch_unwind, AssertUnwindSafe};

use ghostwriter_core::harness::{Op, System, SystemConfig, Violation};
use ghostwriter_core::l1::GwParams;
use ghostwriter_core::msg::{Msg, Payload, PayloadCtl, WireTag};
use ghostwriter_core::proto::find_row;
use ghostwriter_core::{BaseProtocol, Coverage, GiStorePolicy, RecoveryParams, ScribePolicy};

pub mod shard;
pub mod trace;

pub use shard::{run_sweep, ShardLog, ShardOptions, SweepOutcome, SweepSpec};
pub use trace::{decode_trace, encode_trace};

/// One step of a core's access program: an operation against a pool
/// block index.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Step {
    pub block: usize,
    pub op: Op,
}

/// A bounded access program: one step sequence per core.
pub type Program = Vec<Vec<Step>>;

/// One scheduling decision of the checker — the alphabet whose
/// interleavings the search enumerates.
///
/// `Issue` carries the step it issues, so a trace alone determines the
/// access program it exercises: counterexamples from the sharded
/// unified search ([`shard`]) and from per-program [`Checker`] runs
/// share one format, one renderer and one replay path.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Action {
    /// `core` issues `step` (enabled while the core is idle and has
    /// program budget left).
    Issue { core: usize, step: Step },
    /// Deliver the head of the (src, dst) FIFO channel.
    Deliver { src: usize, dst: usize },
    /// Fire `core`'s periodic GI-timeout sweep (enabled while the core
    /// holds a GI line).
    GiTimeout { core: usize },
    /// Bounded-fault mode: drop the head of the (src, dst) channel
    /// (enabled on the unreliable virtual channel while fault budget
    /// remains).
    Drop { src: usize, dst: usize },
    /// Bounded-fault mode: re-enqueue a copy of the head of the
    /// (src, dst) channel (a network duplicate).
    Duplicate { src: usize, dst: usize },
    /// Bounded-fault mode: mark the head of the (src, dst) channel
    /// corrupt (a payload bit-flip the receiver's ECC detects).
    Corrupt { src: usize, dst: usize },
    /// Bounded-fault mode: fire `core`'s retry timeout (enabled while
    /// the core has an outstanding request and no message for it is in
    /// flight — i.e. exactly when recovery is the only way forward).
    Retry { core: usize },
}

/// Short rendering of one program step (`St b0`, `Ld(w1) b0`,
/// `Sc(d4) b1`).
pub fn describe_step(step: Step) -> String {
    match step.op {
        Op::Store => format!("St b{}", step.block),
        Op::Load { writer } => format!("Ld(w{writer}) b{}", step.block),
        Op::Scribble { d } => format!("Sc(d{d}) b{}", step.block),
    }
}

impl Action {
    /// Human-readable rendering, decoding node keys with `cores`.
    pub fn describe(&self, cores: usize) -> String {
        let ep = |k: usize| {
            if k < cores {
                format!("L1({k})")
            } else if k < 2 * cores {
                format!("Dir({})", k - cores)
            } else {
                format!("Mem({})", k - 2 * cores)
            }
        };
        match self {
            Action::Issue { core, step } => {
                format!("issue   core {core}: {}", describe_step(*step))
            }
            Action::Deliver { src, dst } => {
                format!("deliver {} -> {}", ep(*src), ep(*dst))
            }
            Action::GiTimeout { core } => format!("timeout core {core}"),
            Action::Drop { src, dst } => {
                format!("drop    {} -> {}", ep(*src), ep(*dst))
            }
            Action::Duplicate { src, dst } => {
                format!("dup     {} -> {}", ep(*src), ep(*dst))
            }
            Action::Corrupt { src, dst } => {
                format!("corrupt {} -> {}", ep(*src), ep(*dst))
            }
            Action::Retry { core } => format!("retry   core {core}"),
        }
    }
}

/// A deliberately injected protocol bug, applied at the network layer so
/// the real controllers stay untouched. Used to demonstrate that the
/// checker finds real violations and shrinks them.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mutation {
    /// An INV delivery is lost but its INV_ACK is forged: the directory
    /// believes the sharer invalidated while it still holds S — the
    /// classic skipped-invalidation bug (breaks SWMR / data-value).
    SkipInvalidation,
    /// An INV_ACK delivery is silently lost: the directory waits for an
    /// acknowledgement that never arrives (breaks liveness).
    DropInvAck,
    /// The named transition-table row is deleted from the protocol: the
    /// first time a controller dispatches through it, it raises a
    /// [`ghostwriter_core::ProtocolError`] instead (caught by the
    /// checker as an invariant violation and shrunk like any other).
    DeleteRow(&'static str),
}

impl Mutation {
    pub fn parse(s: &str) -> Option<Self> {
        if let Some(name) = s.strip_prefix("delete-row:") {
            return find_row(name).map(|row| Self::DeleteRow(row.name()));
        }
        match s {
            "skip-inv" => Some(Self::SkipInvalidation),
            "drop-inv-ack" => Some(Self::DropInvAck),
            _ => None,
        }
    }

    /// The canonical command-line token, the exact inverse of
    /// [`Mutation::parse`] (used in cache keys and replay commands).
    pub fn token(&self) -> String {
        match self {
            Self::SkipInvalidation => "skip-inv".into(),
            Self::DropInvAck => "drop-inv-ack".into(),
            Self::DeleteRow(name) => format!("delete-row:{name}"),
        }
    }
}

impl std::fmt::Display for Mutation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.token())
    }
}

/// Delivers the head of `key`, applying `mutation`'s network-layer
/// corruption when it matches. The one implementation shared by the
/// per-program [`Checker`] and the sharded unified search, so a
/// mutation means exactly the same fault in both engines.
pub(crate) fn deliver_mutated(
    sys: &mut System,
    mutation: Option<Mutation>,
    key: (usize, usize),
) -> Result<(), Violation> {
    match (mutation, sys.peek_channel(key)) {
        (Some(Mutation::SkipInvalidation), Some(m)) if matches!(m.payload, PayloadCtl::Inv) => {
            // The L1 never sees the INV, but the directory gets the
            // ack it is waiting for.
            let lost = sys.drop_message(key).expect("peeked message present");
            sys.inject(Msg {
                src: lost.dst,
                dst: lost.src,
                block: lost.block,
                payload: Payload::InvAck,
                tag: WireTag::default(),
            });
            Ok(())
        }
        (Some(Mutation::DropInvAck), Some(m)) if matches!(m.payload, PayloadCtl::InvAck) => {
            sys.drop_message(key).expect("peeked message present");
            Ok(())
        }
        _ => sys.deliver(key),
    }
}

/// Appends the bounded-fault actions enabled in `sys`: drop/duplicate
/// on every faultable channel head and corrupt on every corruptible
/// head while `budget_left`, plus a retry wherever a core is wedged
/// (outstanding request, nothing in flight for it — recovery is the
/// only way forward, so retries are never budget-gated). Shared by the
/// per-program [`Checker`] and the sharded unified search so a fault
/// means exactly the same thing in both engines.
pub(crate) fn fault_actions(sys: &System, cores: usize, budget_left: bool, acts: &mut Vec<Action>) {
    if budget_left {
        for (src, dst) in sys.channels() {
            if sys.head_faultable((src, dst)) {
                acts.push(Action::Drop { src, dst });
                acts.push(Action::Duplicate { src, dst });
            }
            if sys.head_corruptible((src, dst)) {
                acts.push(Action::Corrupt { src, dst });
            }
        }
    }
    for core in 0..cores {
        if sys.needs_retry(core) {
            acts.push(Action::Retry { core });
        }
    }
}

/// Applies one bounded-fault action (the caller accounts the budget).
pub(crate) fn apply_fault(sys: &mut System, action: Action) -> Result<(), Violation> {
    match action {
        Action::Drop { src, dst } => {
            sys.drop_message((src, dst));
            Ok(())
        }
        Action::Duplicate { src, dst } => {
            sys.duplicate_head((src, dst));
            Ok(())
        }
        Action::Corrupt { src, dst } => {
            sys.taint_head((src, dst));
            Ok(())
        }
        Action::Retry { core } => sys.retry(core).map(|_| ()),
        _ => unreachable!("not a fault action"),
    }
}

/// The recovery parameters a fault budget of `k` turns on: the checker
/// profile, with the retry budget widened to cover `k` (every dropped
/// message may cost one retry, and the exhaustive sweep must not trip
/// `retry_exhausted` spuriously).
pub(crate) fn recovery_for_budget(k: usize) -> RecoveryParams {
    RecoveryParams {
        max_retries: (k as u32).max(RecoveryParams::checker().max_retries),
        ..RecoveryParams::checker()
    }
}

/// How an explored trace failed.
#[derive(Clone, Debug)]
pub enum Failure {
    /// A harness invariant reported a violation.
    Invariant(Violation),
    /// A terminal state that is not a completed quiescent run: some
    /// core waits forever.
    Deadlock { busy_cores: Vec<usize> },
    /// A controller panicked (an unhandled protocol race).
    Panic(String),
}

impl std::fmt::Display for Failure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Failure::Invariant(v) => write!(f, "invariant violation: {v}"),
            Failure::Deadlock { busy_cores } => {
                write!(f, "deadlock: cores {busy_cores:?} blocked forever")
            }
            Failure::Panic(msg) => write!(f, "controller panic: {msg}"),
        }
    }
}

/// A failing action trace from the initial state, with its failure.
#[derive(Clone, Debug)]
pub struct Counterexample {
    pub trace: Vec<Action>,
    pub failure: Failure,
    /// How many leading actions of `trace` are the shard prefix the
    /// sharded sweep split the search at (0 for unsharded searches and
    /// after shrinking, which erases the shard structure).
    pub prefix_len: usize,
}

impl Counterexample {
    pub fn new(trace: Vec<Action>, failure: Failure) -> Self {
        Self {
            trace,
            failure,
            prefix_len: 0,
        }
    }

    /// Pretty multi-line rendering for CLI / panic messages. Actions
    /// inside the shard prefix are marked, so a trace that came out of
    /// the sharded sweep shows where frontier splitting ended and the
    /// shard-local search began.
    pub fn render(&self, cores: usize) -> String {
        let mut s = String::new();
        for (i, a) in self.trace.iter().enumerate() {
            let mark = if i < self.prefix_len {
                "  [shard prefix]"
            } else {
                ""
            };
            s.push_str(&format!("  {i:>3}. {}{mark}\n", a.describe(cores)));
        }
        s.push_str(&format!("  => {}\n", self.failure));
        s
    }
}

/// Outcome of a bounded search.
#[derive(Debug)]
pub struct CheckReport {
    /// Distinct states visited (after fingerprint dedup).
    pub states: usize,
    /// Transitions applied (including ones into already-visited states).
    pub transitions: usize,
    /// Deepest trace explored.
    pub max_depth: usize,
    /// True if the depth or state bound cut the search short — the space
    /// was *not* exhausted.
    pub truncated: bool,
    /// Union of the transition-table rows exercised anywhere in the
    /// explored state space (union over all DFS branches; counts are an
    /// over-approximation, zero/non-zero is exact).
    pub coverage: Coverage,
    /// First failure found, already shrunk, if any.
    pub counterexample: Option<Counterexample>,
}

/// The bounded model checker: a system shape, a fixed access program,
/// optional fault injection, and search bounds.
#[derive(Clone, Debug)]
pub struct Checker {
    pub sys: SystemConfig,
    pub program: Program,
    pub mutation: Option<Mutation>,
    /// Bounded-fault mode: up to this many message faults (drop,
    /// duplicate, corrupt) become explicit schedule actions, and the
    /// recovery rows ([`RecoveryParams::checker`], with the retry
    /// budget widened to cover the fault budget) are enabled so the
    /// search proves every ≤k-fault trace still completes. `0` (the
    /// default) leaves the space and the fingerprints exactly as
    /// before.
    pub fault_budget: usize,
    /// Also interleave GI-timeout sweeps into the schedule (only does
    /// anything in Ghostwriter configurations).
    pub explore_gi_timeouts: bool,
    /// Bound on trace length.
    pub max_depth: usize,
    /// Bound on distinct visited states.
    pub max_states: usize,
}

impl Checker {
    /// A checker over `sys` running `program`, with defaults that fully
    /// exhaust small configurations.
    pub fn new(sys: SystemConfig, program: Program) -> Self {
        assert_eq!(program.len(), sys.cores, "one program per core");
        Self {
            sys,
            program,
            mutation: None,
            fault_budget: 0,
            explore_gi_timeouts: false,
            max_depth: 256,
            max_states: 1_000_000,
        }
    }

    fn enabled(&self, sys: &System, pcs: &[usize], used: usize) -> Vec<Action> {
        let mut acts = Vec::new();
        for (core, &pc) in pcs.iter().enumerate() {
            if pc < self.program[core].len() && sys.core_idle(core) {
                acts.push(Action::Issue {
                    core,
                    step: self.program[core][pc],
                });
            }
        }
        for (src, dst) in sys.channels() {
            acts.push(Action::Deliver { src, dst });
        }
        if self.fault_budget > 0 {
            fault_actions(sys, self.sys.cores, used < self.fault_budget, &mut acts);
        }
        if self.explore_gi_timeouts {
            for core in 0..self.sys.cores {
                if sys.has_gi(core) {
                    acts.push(Action::GiTimeout { core });
                }
            }
        }
        acts
    }

    /// Applies `action` (which must be enabled), running the per-step
    /// invariant checks and converting controller panics into
    /// [`Failure::Panic`].
    fn apply(
        &self,
        sys: &mut System,
        pcs: &mut [usize],
        used: &mut usize,
        action: Action,
    ) -> Result<(), Failure> {
        let step_result = catch_unwind(AssertUnwindSafe(|| match action {
            Action::Issue { core, step } => {
                pcs[core] += 1;
                sys.issue(core, step.block, step.op)
            }
            Action::Deliver { src, dst } => deliver_mutated(sys, self.mutation, (src, dst)),
            Action::GiTimeout { core } => sys.gi_timeout(core),
            Action::Drop { .. } | Action::Duplicate { .. } | Action::Corrupt { .. } => {
                *used += 1;
                apply_fault(sys, action)
            }
            Action::Retry { .. } => apply_fault(sys, action),
        }));
        match step_result {
            Ok(Ok(())) => sys.check_swmr().map_err(Failure::Invariant),
            Ok(Err(v)) => Err(Failure::Invariant(v)),
            Err(payload) => Err(Failure::Panic(panic_text(payload))),
        }
    }

    /// What a terminal (no enabled actions) state means: a completed
    /// quiescent run is checked against the quiescence invariants;
    /// anything else is blocked forever.
    fn terminal_failure(&self, sys: &System, pcs: &[usize]) -> Option<Failure> {
        let done = pcs
            .iter()
            .enumerate()
            .all(|(c, &pc)| pc == self.program[c].len());
        if done && sys.quiescent() {
            sys.check_quiescent().err().map(Failure::Invariant)
        } else {
            Some(Failure::Deadlock {
                busy_cores: sys.busy_cores(),
            })
        }
    }

    /// The initial system, with any [`Mutation::DeleteRow`] applied at
    /// construction (the row is deleted from the shared table, so both
    /// the search and every shrinking replay see the same mutant).
    fn initial_system(&self) -> System {
        let mut cfg = self.sys;
        if let Some(Mutation::DeleteRow(name)) = self.mutation {
            cfg.disabled_row = Some(name);
        }
        if self.fault_budget > 0 {
            cfg.recovery = Some(recovery_for_budget(self.fault_budget));
        }
        System::new(cfg)
    }

    /// Runs the bounded exhaustive search. Stops at the first failure,
    /// which is returned shrunk.
    pub fn check(&self) -> CheckReport {
        let mut report = CheckReport {
            states: 0,
            transitions: 0,
            max_depth: 0,
            truncated: false,
            coverage: Coverage::default(),
            counterexample: None,
        };
        let sys = self.initial_system();
        let pcs = vec![0usize; self.sys.cores];
        let mut visited: HashSet<(u128, Vec<usize>, usize)> = HashSet::new();
        visited.insert((sys.fingerprint(), pcs.clone(), 0));
        report.states = 1;
        let mut path = Vec::new();
        let found = self.dfs(&sys, &pcs, 0, &mut visited, &mut path, &mut report);
        report.counterexample = found.map(|cex| self.shrink(cex));
        report
    }

    fn dfs(
        &self,
        sys: &System,
        pcs: &[usize],
        used: usize,
        visited: &mut HashSet<(u128, Vec<usize>, usize)>,
        path: &mut Vec<Action>,
        report: &mut CheckReport,
    ) -> Option<Counterexample> {
        report.max_depth = report.max_depth.max(path.len());
        let actions = self.enabled(sys, pcs, used);
        if actions.is_empty() {
            return self
                .terminal_failure(sys, pcs)
                .map(|failure| Counterexample::new(path.clone(), failure));
        }
        if path.len() >= self.max_depth || report.states >= self.max_states {
            report.truncated = true;
            return None;
        }
        for action in actions {
            let mut next = sys.clone();
            let mut next_pcs = pcs.to_vec();
            let mut next_used = used;
            path.push(action);
            report.transitions += 1;
            let applied = self.apply(&mut next, &mut next_pcs, &mut next_used, action);
            report.coverage.merge(&next.stats().coverage);
            match applied {
                Err(failure) => {
                    let cex = Counterexample::new(path.clone(), failure);
                    path.pop();
                    return Some(cex);
                }
                Ok(()) => {
                    if visited.insert((next.fingerprint(), next_pcs.clone(), next_used)) {
                        report.states += 1;
                        if let Some(cex) =
                            self.dfs(&next, &next_pcs, next_used, visited, path, report)
                        {
                            path.pop();
                            return Some(cex);
                        }
                    }
                }
            }
            path.pop();
        }
        None
    }

    /// Deterministically replays `trace` from the initial state through
    /// the same controllers. Returns the failure it reproduces, or
    /// `None` if the trace is clean (or contains an action that is not
    /// enabled at its position — relevant while shrinking).
    pub fn replay(&self, trace: &[Action]) -> Option<Failure> {
        let mut sys = self.initial_system();
        let mut pcs = vec![0usize; self.sys.cores];
        let mut used = 0usize;
        for &action in trace {
            if !self.enabled(&sys, &pcs, used).contains(&action) {
                return None;
            }
            if let Err(failure) = self.apply(&mut sys, &mut pcs, &mut used, action) {
                return Some(failure);
            }
        }
        // A trace may also fail by *ending* in a bad terminal state
        // (deadlocks are a property of the final state, not of any
        // single action).
        if self.enabled(&sys, &pcs, used).is_empty() {
            self.terminal_failure(&sys, &pcs)
        } else {
            None
        }
    }

    /// Greedy delta-debugging: repeatedly drop any single action whose
    /// removal still reproduces *a* failure, until no single removal
    /// does. The result replays deterministically.
    pub fn shrink(&self, cex: Counterexample) -> Counterexample {
        let mut trace = cex.trace;
        let mut failure = cex.failure;
        loop {
            let mut improved = false;
            let mut i = 0;
            while i < trace.len() {
                let mut candidate = trace.clone();
                candidate.remove(i);
                if let Some(f) = self.replay(&candidate) {
                    trace = candidate;
                    failure = f;
                    improved = true;
                } else {
                    i += 1;
                }
            }
            if !improved {
                break;
            }
        }
        Counterexample::new(trace, failure)
    }
}

pub(crate) fn panic_text(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

// ---------------------------------------------------------------------
// Configuration + program enumeration helpers (shared by tests and the
// gwcheck CLI).
// ---------------------------------------------------------------------

/// Which protocol family a sweep exercises.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProtocolKind {
    Mesi,
    Msi,
    Moesi,
    Mosi,
    Mesif,
    Ghostwriter,
    /// Ghostwriter's GS/GI rows composed over the MOESI base.
    GhostwriterMoesi,
}

impl ProtocolKind {
    /// Every checkable protocol, in sweep order.
    pub const ALL: [ProtocolKind; 7] = [
        Self::Mesi,
        Self::Msi,
        Self::Moesi,
        Self::Mosi,
        Self::Mesif,
        Self::Ghostwriter,
        Self::GhostwriterMoesi,
    ];

    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "mesi" => Some(Self::Mesi),
            "msi" => Some(Self::Msi),
            "moesi" => Some(Self::Moesi),
            "mosi" => Some(Self::Mosi),
            "mesif" => Some(Self::Mesif),
            "gw" | "ghostwriter" => Some(Self::Ghostwriter),
            "gw-moesi" | "ghostwriter-moesi" => Some(Self::GhostwriterMoesi),
            _ => None,
        }
    }

    /// Canonical command-line token (inverse of [`ProtocolKind::parse`],
    /// used in cache keys and replay commands).
    pub fn token(&self) -> &'static str {
        match self {
            Self::Mesi => "mesi",
            Self::Msi => "msi",
            Self::Moesi => "moesi",
            Self::Mosi => "mosi",
            Self::Mesif => "mesif",
            Self::Ghostwriter => "gw",
            Self::GhostwriterMoesi => "gw-moesi",
        }
    }

    /// The base row-set family this kind runs on.
    pub fn base(&self) -> BaseProtocol {
        match self {
            Self::Msi => BaseProtocol::Msi,
            Self::Moesi | Self::GhostwriterMoesi => BaseProtocol::Moesi,
            Self::Mosi => BaseProtocol::Mosi,
            Self::Mesif => BaseProtocol::Mesif,
            Self::Mesi | Self::Ghostwriter => BaseProtocol::Mesi,
        }
    }
}

/// Smallest power of two ≥ `n` (cache geometries must be powers of two).
fn pow2_at_least(n: usize) -> usize {
    n.next_power_of_two().max(1)
}

/// A minimal system shape for model checking: single-set caches just big
/// enough to hold the pool (evictions and recalls are exercised by the
/// deeper sweeps that shrink the geometry instead).
pub fn check_config(kind: ProtocolKind, cores: usize, blocks: usize) -> SystemConfig {
    let gw = matches!(
        kind,
        ProtocolKind::Ghostwriter | ProtocolKind::GhostwriterMoesi
    )
    .then_some(GwParams {
        scribe: ScribePolicy::Bitwise,
        enable_gs: true,
        enable_gi: true,
        gi_stores: GiStorePolicy::Fallback,
        max_hidden_writes: Some(3),
    });
    SystemConfig {
        cores,
        blocks,
        l1_sets: 1,
        l1_ways: pow2_at_least(blocks.min(2)),
        l2_sets: 1,
        l2_ways: pow2_at_least(blocks),
        gw,
        base: kind.base(),
        disabled_row: None,
        recovery: None,
    }
}

/// The per-step alphabet for a sweep: every op × every pool block.
/// Loads read every core's slot; Ghostwriter configs add scribbles.
pub fn step_alphabet(kind: ProtocolKind, cores: usize, blocks: usize) -> Vec<Step> {
    let mut ops = vec![Op::Store];
    for writer in 0..cores {
        ops.push(Op::Load { writer });
    }
    if matches!(
        kind,
        ProtocolKind::Ghostwriter | ProtocolKind::GhostwriterMoesi
    ) {
        ops.push(Op::Scribble { d: 4 });
    }
    let mut steps = Vec::new();
    for block in 0..blocks {
        for &op in &ops {
            steps.push(Step { block, op });
        }
    }
    steps
}

/// Every program assigning each of `cores` cores a sequence of
/// `len` steps from `alphabet` — the |alphabet|^(cores·len) cartesian
/// product, enumerated in mixed-radix order.
pub fn enumerate_programs(alphabet: &[Step], cores: usize, len: usize) -> Vec<Program> {
    let digits = cores * len;
    let radix = alphabet.len();
    let total = radix.checked_pow(digits as u32).expect("sweep too large");
    (0..total)
        .map(|mut idx| {
            (0..cores)
                .map(|_| {
                    (0..len)
                        .map(|_| {
                            let s = alphabet[idx % radix];
                            idx /= radix;
                            s
                        })
                        .collect()
                })
                .collect()
        })
        .collect()
}

/// Outcome of sweeping a whole program family.
#[derive(Debug, Default)]
pub struct SweepReport {
    pub programs: usize,
    pub states: usize,
    pub transitions: usize,
    pub truncated: bool,
    /// Union of the per-program [`CheckReport::coverage`] unions.
    pub coverage: Coverage,
    pub counterexample: Option<(Program, Counterexample)>,
}

/// Exhaustively checks every interleaving of every program of
/// `ops_per_core` steps per core. Stops at the first failure.
pub fn sweep(
    kind: ProtocolKind,
    cores: usize,
    blocks: usize,
    ops_per_core: usize,
    explore_gi_timeouts: bool,
    mutation: Option<Mutation>,
) -> SweepReport {
    let cfg = check_config(kind, cores, blocks);
    let alphabet = step_alphabet(kind, cores, blocks);
    let mut report = SweepReport::default();
    for program in enumerate_programs(&alphabet, cores, ops_per_core) {
        let mut checker = Checker::new(cfg, program.clone());
        checker.explore_gi_timeouts = explore_gi_timeouts;
        checker.mutation = mutation;
        let r = checker.check();
        report.programs += 1;
        report.states += r.states;
        report.transitions += r.transitions;
        report.truncated |= r.truncated;
        report.coverage.merge(&r.coverage);
        if let Some(cex) = r.counterexample {
            report.counterexample = Some((program, cex));
            return report;
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_core_program(a: &[(usize, Op)], b: &[(usize, Op)]) -> Program {
        let conv = |steps: &[(usize, Op)]| {
            steps
                .iter()
                .map(|&(block, op)| Step { block, op })
                .collect::<Vec<_>>()
        };
        vec![conv(a), conv(b)]
    }

    #[test]
    fn single_store_explores_and_passes() {
        let cfg = check_config(ProtocolKind::Mesi, 2, 1);
        let program = two_core_program(&[(0, Op::Store)], &[]);
        let report = Checker::new(cfg, program).check();
        assert!(report.counterexample.is_none());
        assert!(!report.truncated);
        assert!(report.states > 1);
    }

    #[test]
    fn conflicting_writers_explore_cleanly() {
        // Both cores store the same block: the full upgrade/invalidate
        // race space must stay invariant-clean.
        let cfg = check_config(ProtocolKind::Mesi, 2, 1);
        let program = two_core_program(
            &[(0, Op::Store), (0, Op::Store)],
            &[(0, Op::Store), (0, Op::Store)],
        );
        let report = Checker::new(cfg, program).check();
        assert!(
            report.counterexample.is_none(),
            "{}",
            report.counterexample.unwrap().render(2)
        );
        assert!(!report.truncated);
        // The race has genuinely many interleavings.
        assert!(report.states > 100, "only {} states", report.states);
    }

    #[test]
    fn replay_reproduces_search_failures_deterministically() {
        // Store-then-load demotes the owner to a sharer; the second
        // store's UPGRADE generates the INV the mutation corrupts.
        let cfg = check_config(ProtocolKind::Mesi, 2, 1);
        let program = two_core_program(
            &[(0, Op::Load { writer: 1 })],
            &[(0, Op::Store), (0, Op::Store)],
        );
        let mut checker = Checker::new(cfg, program);
        checker.mutation = Some(Mutation::SkipInvalidation);
        let report = checker.check();
        let cex = report.counterexample.expect("mutation must be caught");
        for _ in 0..3 {
            let f = checker.replay(&cex.trace).expect("replay reproduces");
            assert!(
                matches!(f, Failure::Invariant(_) | Failure::Deadlock { .. }),
                "unexpected failure class: {f}"
            );
        }
    }

    #[test]
    fn skipped_invalidation_caught_and_shrunk_short() {
        // The acceptance-criteria test: a seeded skipped-invalidation
        // bug is found by exhaustive search and the shrunk
        // counterexample replays in at most 20 steps.
        let cfg = check_config(ProtocolKind::Mesi, 2, 1);
        let program = two_core_program(
            &[(0, Op::Load { writer: 1 })],
            &[(0, Op::Store), (0, Op::Store)],
        );
        let mut checker = Checker::new(cfg, program);
        checker.mutation = Some(Mutation::SkipInvalidation);
        let report = checker.check();
        let cex = report
            .counterexample
            .expect("skipped invalidation must violate an invariant");
        assert!(
            cex.trace.len() <= 20,
            "shrunk counterexample too long:\n{}",
            cex.render(2)
        );
        assert!(
            checker.replay(&cex.trace).is_some(),
            "shrunk trace must still reproduce"
        );
    }

    #[test]
    fn dropped_inv_ack_deadlocks() {
        let cfg = check_config(ProtocolKind::Mesi, 2, 1);
        let program = two_core_program(
            &[(0, Op::Load { writer: 1 })],
            &[(0, Op::Store), (0, Op::Store)],
        );
        let mut checker = Checker::new(cfg, program);
        checker.mutation = Some(Mutation::DropInvAck);
        let report = checker.check();
        let cex = report.counterexample.expect("lost ack must deadlock");
        assert!(
            matches!(cex.failure, Failure::Deadlock { .. }),
            "expected deadlock, got: {}",
            cex.failure
        );
        assert!(cex.trace.len() <= 20, "{}", cex.render(2));
    }

    #[test]
    fn program_enumeration_is_the_full_product() {
        let alphabet = step_alphabet(ProtocolKind::Mesi, 2, 1);
        assert_eq!(alphabet.len(), 3); // Store, Load{0}, Load{1}
        let programs = enumerate_programs(&alphabet, 2, 2);
        assert_eq!(programs.len(), 81); // 3^(2*2)
        let unique: std::collections::HashSet<_> = programs.iter().collect();
        assert_eq!(unique.len(), 81);
    }
}
