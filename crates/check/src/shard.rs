//! Sharded, parallel, cached sweeps: the unified search engine.
//!
//! The per-program [`crate::sweep`] enumerates |alphabet|^(cores·ops)
//! programs and runs a fresh DFS for each — at 3 cores / 2 blocks that
//! is 262 144 MESI searches which mostly re-explore each other's
//! prefixes. This module replaces the outer program loop with one
//! *unified* search: [`Action::Issue`] chooses any alphabet step at
//! issue time (budgeted to `ops` steps per core), so a search state is
//! `(System fingerprint, per-core remaining budget)` and the visited
//! set collapses the cross-program prefix sharing into a single
//! deduplicated graph. The union of behaviors is identical — every
//! (program, interleaving) path of the per-program sweep is a path here
//! and vice versa (asserted row-for-row by the differential tests in
//! `tests/sweeps.rs`) — but the state count drops by orders of
//! magnitude.
//!
//! On top of the unified space sits the sharding the work-stealing pool
//! consumes:
//!
//! 1. **Plan** ([`plan_shards`]): breadth-first expansion from the
//!    initial state to a fixed depth, deduplicating states globally.
//!    The resulting frontier states — *deduped roots* — become shard
//!    jobs; their action prefixes identify them.
//! 2. **Execute**: each shard runs an independent bounded DFS from its
//!    root with a private visited set, on
//!    [`ghostwriter_exp::pool::map_parallel`]. Per-shard sets (rather
//!    than one shared concurrent table) make every shard's result a
//!    pure function of its root, so reports are byte-identical across
//!    `--jobs` settings — and cacheable.
//! 3. **Cache**: a finished shard is stored content-addressed in the
//!    [`ghostwriter_exp::cache::ResultCache`], keyed by (spec key,
//!    shard depth, prefix trace). Re-running a sweep after an
//!    unrelated change is a warm no-op (`--expect-cached`).
//! 4. **Merge**: shard results fold in frontier order — states,
//!    transitions, coverage, truncation — and the first failing shard
//!    (in frontier order) supplies the counterexample, which is
//!    re-replayed and shrunk at merge time so cold and warm runs
//!    produce byte-identical reports.
//!
//! Determinism guarantees (the `parallel_determinism` suite asserts
//! these): the shard plan depends only on the spec and depth; shard
//! results depend only on their root; the merge folds in plan order.
//! Nothing observes scheduling, so `--jobs 1` ≡ `--jobs N`, and cached
//! records round-trip losslessly, so cold ≡ warm.

use std::collections::{HashMap, HashSet, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use ghostwriter_core::harness::{System, SystemConfig};
use ghostwriter_core::{Coverage, Json};
use ghostwriter_exp::cache::{CacheRecord, Miss, ResultCache};
use ghostwriter_exp::pool::map_parallel;
use ghostwriter_exp::Fingerprint;

use crate::trace::{decode_trace, encode_trace};
use crate::{
    check_config, deliver_mutated, panic_text, step_alphabet, Action, Counterexample, Failure,
    Mutation, ProtocolKind, Step,
};

/// Bumped whenever the unified search's semantics change (alphabet,
/// invariants, bounds): part of every shard cache key, so stale caches
/// from an older checker can never satisfy a newer sweep.
///
/// Revision 3: the harness virtual network became a dense channel grid,
/// which changed state hashing (empty channels now hash canonically
/// instead of by insertion history).
///
/// Deliberately NOT bumped for the payload/data split: shard cache keys
/// are built from these textual fields, never from
/// `System::fingerprint` (see [`SweepSpec::key`]), so the in-process
/// fingerprint scheme is free to change representation as long as it
/// still partitions logical states correctly. The split keeps that
/// property by hashing each queued message's logical form rather than
/// its pool slot — pinned by
/// `fingerprint_independent_of_data_slot_assignment` in the core
/// harness and `check_revision_pinned` below.
pub const CHECK_REVISION: u64 = 3;

/// Schema version of the cached shard record payload.
const SHARD_SCHEMA: u64 = 1;

/// Auto shard-depth policy: deepen the plan until the frontier has at
/// least this many roots (or [`AUTO_DEPTH_CAP`] is reached). Fixed
/// constants — the plan must not depend on `--jobs`, or reports would.
const AUTO_FRONTIER_TARGET: usize = 48;
const AUTO_DEPTH_CAP: usize = 4;

/// One sweep cell of the sharded checker: everything that identifies
/// the searched space (and therefore the cache key).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SweepSpec {
    pub kind: ProtocolKind,
    pub cores: usize,
    pub blocks: usize,
    /// Program steps per core (the per-core issue budget).
    pub ops: usize,
    /// Interleave GI-timeout sweeps (Ghostwriter only).
    pub gi_timeouts: bool,
    pub mutation: Option<Mutation>,
    /// Single-way L1: forces evictions/recalls into the explored space
    /// (the default geometry holds the whole pool, so eviction rows
    /// would otherwise be unreachable).
    pub tight_l1: bool,
    /// Bounded-fault mode: up to this many message faults (drop,
    /// duplicate, corrupt) become explicit schedule actions and the
    /// recovery rows are enabled, so the sweep proves every ≤k-fault
    /// interleaving still completes. `0` (the default) leaves the
    /// space — and every existing cache key — untouched.
    pub fault_budget: usize,
}

impl SweepSpec {
    pub fn new(kind: ProtocolKind, cores: usize, blocks: usize, ops: usize) -> Self {
        Self {
            kind,
            cores,
            blocks,
            ops,
            gi_timeouts: false,
            mutation: None,
            tight_l1: false,
            fault_budget: 0,
        }
    }

    /// The system shape this spec checks.
    pub fn config(&self) -> SystemConfig {
        let mut cfg = check_config(self.kind, self.cores, self.blocks);
        if self.tight_l1 {
            cfg.l1_ways = 1;
        }
        if let Some(Mutation::DeleteRow(name)) = self.mutation {
            cfg.disabled_row = Some(name);
        }
        if self.fault_budget > 0 {
            cfg.recovery = Some(crate::recovery_for_budget(self.fault_budget));
        }
        cfg
    }

    /// The issue-step alphabet.
    pub fn alphabet(&self) -> Vec<Step> {
        step_alphabet(self.kind, self.cores, self.blocks)
    }

    /// Canonical cache-key string. Built from textual spec fields only
    /// — never from `System::fingerprint`, whose `DefaultHasher` output
    /// is not stable across Rust versions (fine in-process, fatal for
    /// an on-disk cache).
    pub fn key(&self) -> String {
        let mut key = format!(
            "check-rev={CHECK_REVISION}|{}|{}c|{}b|ops={}|gi={}|tight={}|mut={}",
            self.kind.token(),
            self.cores,
            self.blocks,
            self.ops,
            self.gi_timeouts as u8,
            self.tight_l1 as u8,
            self.mutation.map_or("none".into(), |m| m.token()),
        );
        // Appended only in bounded-fault mode, so every fault-free key
        // (and its on-disk cache) is byte-identical to before the
        // fault dimension existed.
        if self.fault_budget > 0 {
            key.push_str(&format!("|faults={}", self.fault_budget));
        }
        key
    }

    /// Human-readable cell label for CLI output.
    pub fn label(&self) -> String {
        format!(
            "{:?} {}c/{}b ops={}{}{}{}",
            self.kind,
            self.cores,
            self.blocks,
            self.ops,
            if self.gi_timeouts {
                " +gi-timeouts"
            } else {
                ""
            },
            if self.tight_l1 { " +tight-l1" } else { "" },
            match self.mutation {
                Some(m) => format!(" +mutation({m})"),
                None => String::new(),
            },
        ) + &if self.fault_budget > 0 {
            format!(" +faults({})", self.fault_budget)
        } else {
            String::new()
        }
    }

    /// The exact `gwcheck` invocation that replays `trace` against this
    /// spec (printed verbatim under counterexamples; consumed by
    /// `gwcheck --replay`).
    pub fn replay_command(&self, trace: &[Action]) -> String {
        let mut s = format!(
            "gwcheck --protocol {} --cores {} --blocks {} --ops {}",
            self.kind.token(),
            self.cores,
            self.blocks,
            self.ops
        );
        if self.gi_timeouts {
            s.push_str(" --gi-timeouts");
        }
        if self.tight_l1 {
            s.push_str(" --tight-l1");
        }
        if let Some(m) = self.mutation {
            s.push_str(&format!(" --mutation {}", m.token()));
        }
        if self.fault_budget > 0 {
            s.push_str(&format!(" --fault-budget {}", self.fault_budget));
        }
        s.push_str(&format!(" --replay {}", encode_trace(trace)));
        s
    }
}

impl Counterexample {
    /// Self-contained failure report: the shard prefix (when the trace
    /// still carries one), the rendered trace, and the replay command
    /// line, verbatim.
    pub fn describe(&self, spec: &SweepSpec) -> String {
        let mut s = String::new();
        if self.prefix_len > 0 {
            s.push_str(&format!(
                "  shard prefix ({} actions): {}\n",
                self.prefix_len,
                encode_trace(&self.trace[..self.prefix_len])
            ));
        }
        s.push_str(&self.render(spec.cores));
        s.push_str(&format!("  replay: {}\n", spec.replay_command(&self.trace)));
        s
    }
}

/// The unified (program-free) search space over one spec: issue
/// actions pick any alphabet step, budgeted per core.
pub struct Space {
    spec: SweepSpec,
    cfg: SystemConfig,
    alphabet: Vec<Step>,
    /// Bound on trace length (absolute, from the initial state).
    pub max_depth: usize,
    /// Bound on newly visited states per shard.
    pub max_states: usize,
}

/// A search state key: system fingerprint + packed per-core remaining
/// budgets (4 bits per core — asserted in [`Space::new`]).
type StateKey = (u128, u64);

fn pack_remaining(remaining: &[usize]) -> u64 {
    remaining
        .iter()
        .fold(0u64, |acc, &r| (acc << 4) | (r as u64))
}

/// Reconstructs the action trace from `root` to `key` by walking the
/// BFS parent links backwards.
fn trace_to(
    parent: &HashMap<StateKey, (StateKey, Action)>,
    root: StateKey,
    key: StateKey,
) -> Vec<Action> {
    let mut trace = Vec::new();
    let mut at = key;
    while at != root {
        let (prev, action) = parent[&at];
        trace.push(action);
        at = prev;
    }
    trace.reverse();
    trace
}

impl Space {
    pub fn new(spec: &SweepSpec) -> Self {
        assert!(
            spec.cores <= 16 && spec.ops <= 15,
            "state key packs remaining budgets into 4 bits per core"
        );
        assert!(
            spec.fault_budget == 0 || (spec.cores < 16 && spec.fault_budget <= 15),
            "the fault budget packs into one extra state-key nibble"
        );
        Self {
            cfg: spec.config(),
            alphabet: spec.alphabet(),
            spec: spec.clone(),
            max_depth: 256,
            max_states: 1_000_000,
        }
    }

    pub fn spec(&self) -> &SweepSpec {
        &self.spec
    }

    /// The initial state. In bounded-fault mode the `remaining` vector
    /// carries one extra trailing element: the fault budget left. It
    /// rides the existing per-core-budget plumbing (and state-key
    /// nibble packing) everywhere — plans, shards, caches — so the
    /// fault dimension needs no new threading.
    fn initial(&self) -> (System, Vec<usize>) {
        let mut remaining = vec![self.spec.ops; self.spec.cores];
        if self.spec.fault_budget > 0 {
            remaining.push(self.spec.fault_budget);
        }
        (System::new(self.cfg), remaining)
    }

    /// Enabled actions, in a fixed deterministic order (issues by core
    /// then alphabet order, delivers in channel-map order, timeouts by
    /// core). Plan and shard searches both depend on this order being
    /// schedule-independent.
    fn enabled(&self, sys: &System, remaining: &[usize]) -> Vec<Action> {
        let mut acts = Vec::new();
        for (core, &rem) in remaining[..self.spec.cores].iter().enumerate() {
            if rem > 0 && sys.core_idle(core) {
                for &step in &self.alphabet {
                    acts.push(Action::Issue { core, step });
                }
            }
        }
        for (src, dst) in sys.channels() {
            acts.push(Action::Deliver { src, dst });
        }
        if self.spec.fault_budget > 0 {
            crate::fault_actions(
                sys,
                self.spec.cores,
                remaining[self.spec.cores] > 0,
                &mut acts,
            );
        }
        if self.spec.gi_timeouts {
            for core in 0..self.spec.cores {
                if sys.has_gi(core) {
                    acts.push(Action::GiTimeout { core });
                }
            }
        }
        acts
    }

    fn apply(
        &self,
        sys: &mut System,
        remaining: &mut [usize],
        action: Action,
    ) -> Result<(), Failure> {
        let step_result = catch_unwind(AssertUnwindSafe(|| match action {
            Action::Issue { core, step } => {
                remaining[core] -= 1;
                sys.issue(core, step.block, step.op)
            }
            Action::Deliver { src, dst } => deliver_mutated(sys, self.spec.mutation, (src, dst)),
            Action::GiTimeout { core } => sys.gi_timeout(core),
            Action::Drop { .. } | Action::Duplicate { .. } | Action::Corrupt { .. } => {
                remaining[self.spec.cores] -= 1;
                crate::apply_fault(sys, action)
            }
            Action::Retry { .. } => crate::apply_fault(sys, action),
        }));
        match step_result {
            Ok(Ok(())) => sys.check_swmr().map_err(Failure::Invariant),
            Ok(Err(v)) => Err(Failure::Invariant(v)),
            Err(payload) => Err(Failure::Panic(panic_text(payload))),
        }
    }

    fn terminal_failure(&self, sys: &System, remaining: &[usize]) -> Option<Failure> {
        // Only the per-core issue budgets must drain: leftover fault
        // budget is fine (faults are optional adversary moves).
        if remaining[..self.spec.cores].iter().all(|&r| r == 0) && sys.quiescent() {
            sys.check_quiescent().err().map(Failure::Invariant)
        } else {
            Some(Failure::Deadlock {
                busy_cores: sys.busy_cores(),
            })
        }
    }

    /// Deterministically replays `trace` from the initial state.
    /// Returns the failure it reproduces, or `None` if the trace is
    /// clean or contains a not-enabled action (relevant while
    /// shrinking).
    pub fn replay(&self, trace: &[Action]) -> Option<Failure> {
        let (mut sys, mut remaining) = self.initial();
        for &action in trace {
            if !self.enabled(&sys, &remaining).contains(&action) {
                return None;
            }
            if let Err(failure) = self.apply(&mut sys, &mut remaining, action) {
                return Some(failure);
            }
        }
        if self.enabled(&sys, &remaining).is_empty() {
            self.terminal_failure(&sys, &remaining)
        } else {
            None
        }
    }

    /// Shrinks a counterexample to a minimal-length one.
    ///
    /// Trace deletion alone (the classic ddmin move) bottoms out far
    /// from minimal on coherence traces: the short counterexample is
    /// usually a *different interleaving*, not a subsequence of the
    /// found one — removing any single delivery desequences the
    /// channels and the replay goes clean. So the primary shrinker is
    /// a breadth-first search over the whole space for the shortest
    /// failing trace, capped at the ddmin result's depth (a failure is
    /// known to exist there). BFS order is deterministic, so the
    /// shrunk trace is too. If the BFS hits the state cap first (it
    /// never does on the seeded-mutation configs, but the cap keeps it
    /// total), the ddmin result stands. `prefix_len` resets to 0 —
    /// the minimal trace has no shard structure.
    pub fn shrink(&self, cex: Counterexample) -> Counterexample {
        let ddmin = self.ddmin(cex);
        match self.shortest_failure(ddmin.trace.len()) {
            Some(minimal) if minimal.trace.len() < ddmin.trace.len() => minimal,
            _ => ddmin,
        }
    }

    /// Chunked-deletion pass: drop blocks of halving size (a whole
    /// sub-transaction at once) until no deletion of any size replays
    /// to a failure.
    fn ddmin(&self, cex: Counterexample) -> Counterexample {
        let mut trace = cex.trace;
        let mut failure = cex.failure;
        let mut chunk = (trace.len() / 2).max(1);
        loop {
            let mut improved = false;
            let mut i = 0;
            while i < trace.len() {
                let end = (i + chunk).min(trace.len());
                let mut candidate = trace.clone();
                candidate.drain(i..end);
                if let Some(f) = self.replay(&candidate) {
                    trace = candidate;
                    failure = f;
                    improved = true;
                } else {
                    i += 1;
                }
            }
            if improved {
                chunk = (trace.len() / 2).max(1).min(chunk);
                continue;
            }
            if chunk == 1 {
                break;
            }
            chunk = (chunk / 2).max(1);
        }
        Counterexample::new(trace, failure)
    }

    /// Breadth-first search for the shortest failing trace, up to
    /// `depth_cap` actions. Transition failures surface when a state
    /// at depth d expands (trace length d+1); deadlocks surface when a
    /// terminal state dequeues (trace length d) — so after the first
    /// hit the scan continues until the queue depth rules out anything
    /// shorter. Returns `None` if the state cap is reached first.
    fn shortest_failure(&self, depth_cap: usize) -> Option<Counterexample> {
        let (root, root_remaining) = self.initial();
        let root_key = (root.fingerprint(), pack_remaining(&root_remaining));
        let mut parent: HashMap<StateKey, (StateKey, Action)> = HashMap::new();
        let mut visited: HashSet<StateKey> = HashSet::new();
        visited.insert(root_key);
        let mut queue: VecDeque<(System, Vec<usize>, StateKey, usize)> = VecDeque::new();
        queue.push_back((root, root_remaining, root_key, 0));
        let mut best: Option<Counterexample> = None;
        while let Some((sys, remaining, key, depth)) = queue.pop_front() {
            if let Some(b) = &best {
                // Depths are non-decreasing: a deadlock here would be
                // `depth` long, a transition failure `depth + 1`.
                if depth >= b.trace.len() {
                    break;
                }
            }
            let actions = self.enabled(&sys, &remaining);
            if actions.is_empty() {
                if let Some(f) = self.terminal_failure(&sys, &remaining) {
                    best = Some(Counterexample::new(trace_to(&parent, root_key, key), f));
                }
                continue;
            }
            if depth >= depth_cap {
                continue;
            }
            for action in actions {
                let mut next = sys.clone();
                let mut next_remaining = remaining.clone();
                match self.apply(&mut next, &mut next_remaining, action) {
                    Err(f) => {
                        let mut trace = trace_to(&parent, root_key, key);
                        trace.push(action);
                        if best.as_ref().is_none_or(|b| trace.len() < b.trace.len()) {
                            best = Some(Counterexample::new(trace, f));
                        }
                    }
                    Ok(()) => {
                        let next_key = (next.fingerprint(), pack_remaining(&next_remaining));
                        if visited.insert(next_key) {
                            if visited.len() >= self.max_states {
                                return None;
                            }
                            parent.insert(next_key, (key, action));
                            queue.push_back((next, next_remaining, next_key, depth + 1));
                        }
                    }
                }
            }
        }
        best
    }

    /// Runs one shard: a bounded DFS from `root` (reached via `prefix`)
    /// with a private visited set seeded with the root only. Stops at
    /// the shard's first failure. `states` counts only states first
    /// visited inside this shard — the root itself was counted by the
    /// plan.
    fn run_shard(&self, root: &System, remaining: &[usize], prefix: &[Action]) -> ShardResult {
        let mut result = ShardResult::default();
        let mut visited: HashSet<StateKey> = HashSet::new();
        visited.insert((root.fingerprint(), pack_remaining(remaining)));
        let mut path = prefix.to_vec();
        result.max_depth = path.len() as u64;
        let failing = self.shard_dfs(root, remaining, &mut visited, &mut path, &mut result);
        result.failure_trace = failing;
        result
    }

    fn shard_dfs(
        &self,
        sys: &System,
        remaining: &[usize],
        visited: &mut HashSet<StateKey>,
        path: &mut Vec<Action>,
        result: &mut ShardResult,
    ) -> Option<Vec<Action>> {
        result.max_depth = result.max_depth.max(path.len() as u64);
        let actions = self.enabled(sys, remaining);
        if actions.is_empty() {
            return self.terminal_failure(sys, remaining).map(|_| path.clone());
        }
        if path.len() >= self.max_depth || result.states as usize >= self.max_states {
            result.truncated = true;
            return None;
        }
        for action in actions {
            let mut next = sys.clone();
            let mut next_remaining = remaining.to_vec();
            path.push(action);
            result.transitions += 1;
            let applied = self.apply(&mut next, &mut next_remaining, action);
            result.coverage.merge(&next.stats().coverage);
            match applied {
                Err(_) => {
                    let trace = path.clone();
                    path.pop();
                    return Some(trace);
                }
                Ok(()) => {
                    if visited.insert((next.fingerprint(), pack_remaining(&next_remaining))) {
                        result.states += 1;
                        if let Some(trace) =
                            self.shard_dfs(&next, &next_remaining, visited, path, result)
                        {
                            path.pop();
                            return Some(trace);
                        }
                    }
                }
            }
            path.pop();
        }
        None
    }
}

/// What one shard's search produced. The serializable subset (states,
/// transitions, depth, truncation, coverage, the raw failing trace) is
/// the cached payload; the [`Failure`] itself is *not* stored — it is
/// reconstructed by replaying the trace at merge time, which keeps the
/// cache format simple and makes cold and warm merges take the
/// identical code path.
#[derive(Clone, Debug, Default)]
pub struct ShardResult {
    pub states: u64,
    pub transitions: u64,
    /// Deepest absolute trace (including the shard prefix).
    pub max_depth: u64,
    pub truncated: bool,
    pub coverage: Coverage,
    /// The shard's first failing trace, absolute from the initial
    /// state (prefix included). The [`Failure`] itself is not stored:
    /// merge replays the trace, so cold and warm merges share one
    /// path.
    pub failure_trace: Option<Vec<Action>>,
}

fn coverage_to_json(c: &Coverage) -> Json {
    let mut o = Json::obj();
    o.push(
        "l1",
        Json::Arr(c.l1.iter().map(|&v| Json::U64(v)).collect()),
    );
    o.push(
        "dir",
        Json::Arr(c.dir.iter().map(|&v| Json::U64(v)).collect()),
    );
    o
}

fn coverage_from_json(doc: &Json) -> Result<Coverage, String> {
    let mut c = Coverage::default();
    for (name, slots) in [("l1", &mut c.l1[..]), ("dir", &mut c.dir[..])] {
        let arr = doc
            .field(name)
            .and_then(|f| f.as_arr())
            .map_err(|e| e.to_string())?;
        if arr.len() != slots.len() {
            return Err(format!(
                "coverage.{name} has {} rows, expected {}",
                arr.len(),
                slots.len()
            ));
        }
        for (slot, v) in slots.iter_mut().zip(arr) {
            *slot = v.as_u64().map_err(|e| e.to_string())?;
        }
    }
    Ok(c)
}

impl CacheRecord for ShardResult {
    fn to_json(&self) -> Json {
        let mut o = Json::obj();
        o.push("schema", Json::U64(SHARD_SCHEMA));
        o.push("states", Json::U64(self.states));
        o.push("transitions", Json::U64(self.transitions));
        o.push("max_depth", Json::U64(self.max_depth));
        o.push("truncated", Json::U64(self.truncated as u64));
        o.push("coverage", coverage_to_json(&self.coverage));
        o.push(
            "failure_trace",
            match &self.failure_trace {
                Some(trace) => Json::Str(encode_trace(trace)),
                None => Json::Null,
            },
        );
        o
    }

    fn from_json(doc: &Json) -> Result<Self, String> {
        let schema = doc
            .field("schema")
            .and_then(|f| f.as_u64())
            .map_err(|e| e.to_string())?;
        if schema != SHARD_SCHEMA {
            return Err(format!("shard schema {schema}, expected {SHARD_SCHEMA}"));
        }
        let u = |name: &str| {
            doc.field(name)
                .and_then(|f| f.as_u64())
                .map_err(|e| e.to_string())
        };
        let failure_trace = match doc.field("failure_trace").map_err(|e| e.to_string())? {
            Json::Null => None,
            Json::Str(s) => {
                Some(decode_trace(s).ok_or_else(|| format!("bad failure trace {s:?}"))?)
            }
            other => return Err(format!("failure_trace must be string/null, got {other:?}")),
        };
        Ok(ShardResult {
            states: u("states")?,
            transitions: u("transitions")?,
            max_depth: u("max_depth")?,
            truncated: u("truncated")? != 0,
            coverage: coverage_from_json(doc.field("coverage").map_err(|e| e.to_string())?)?,
            failure_trace,
        })
    }
}

/// The deterministic frontier split: everything the breadth-first
/// prefix expansion produced.
pub struct ShardPlan {
    /// Depth the frontier sits at.
    pub depth: usize,
    /// Deduped frontier roots, in BFS discovery order: the action
    /// prefix that reaches the root, plus the root state itself.
    pub prefixes: Vec<(Vec<Action>, System, Vec<usize>)>,
    /// States first visited during planning (including the initial
    /// state).
    pub states: u64,
    pub transitions: u64,
    pub coverage: Coverage,
    /// A failure hit while expanding the prefix region, if any (the
    /// plan stops immediately; no shards run).
    pub prefix_failure: Option<Counterexample>,
}

/// Expands the unified space breadth-first to `depth` levels (or until
/// the frontier drains), deduplicating states globally. With
/// `depth: None` the auto policy deepens until the frontier reaches
/// [`AUTO_FRONTIER_TARGET`] roots or [`AUTO_DEPTH_CAP`] — fixed
/// constants, so the plan never depends on `--jobs`.
pub fn plan_shards(space: &Space, depth: Option<usize>) -> ShardPlan {
    let (sys, remaining) = space.initial();
    let mut visited: HashSet<StateKey> = HashSet::new();
    visited.insert((sys.fingerprint(), pack_remaining(&remaining)));
    let mut plan = ShardPlan {
        depth: 0,
        prefixes: vec![(Vec::new(), sys, remaining)],
        states: 1,
        transitions: 0,
        coverage: Coverage::default(),
        prefix_failure: None,
    };
    loop {
        let deep_enough = match depth {
            Some(d) => plan.depth >= d,
            None => plan.depth >= AUTO_DEPTH_CAP || plan.prefixes.len() >= AUTO_FRONTIER_TARGET,
        };
        if deep_enough || plan.prefixes.is_empty() {
            return plan;
        }
        let level = std::mem::take(&mut plan.prefixes);
        let mut next_level = Vec::new();
        for (prefix, sys, remaining) in level {
            let actions = space.enabled(&sys, &remaining);
            if actions.is_empty() {
                // Terminal before the frontier: check it here — no
                // shard will ever see it.
                if let Some(failure) = space.terminal_failure(&sys, &remaining) {
                    plan.prefix_failure = Some(Counterexample::new(prefix, failure));
                    return plan;
                }
                continue;
            }
            for action in actions {
                let mut next = sys.clone();
                let mut next_remaining = remaining.clone();
                plan.transitions += 1;
                let applied = space.apply(&mut next, &mut next_remaining, action);
                plan.coverage.merge(&next.stats().coverage);
                let mut trace = prefix.clone();
                trace.push(action);
                if let Err(failure) = applied {
                    plan.prefix_failure = Some(Counterexample::new(trace, failure));
                    return plan;
                }
                if visited.insert((next.fingerprint(), pack_remaining(&next_remaining))) {
                    plan.states += 1;
                    next_level.push((trace, next, next_remaining));
                }
            }
        }
        plan.prefixes = next_level;
        plan.depth += 1;
    }
}

/// Execution policy for one sharded sweep.
#[derive(Clone, Debug)]
pub struct ShardOptions {
    /// Worker threads for the shard pool.
    pub jobs: usize,
    /// Frontier depth; `None` selects the fixed auto policy.
    pub shard_depth: Option<usize>,
    /// `false` bypasses the shard cache (no lookups, no stores).
    pub use_cache: bool,
    /// Where cached shard records live.
    pub cache_dir: PathBuf,
    /// Stream per-shard progress to stderr.
    pub progress: bool,
}

impl Default for ShardOptions {
    fn default() -> Self {
        Self {
            jobs: 1,
            shard_depth: None,
            use_cache: true,
            cache_dir: default_cache_dir(),
            progress: false,
        }
    }
}

/// The default on-repo shard cache (sibling of the experiment cache,
/// same ignored `results/` tree).
pub fn default_cache_dir() -> PathBuf {
    PathBuf::from("results/cache/check")
}

/// Non-deterministic per-run bookkeeping (never part of the report
/// fingerprint: wall clock and cache behavior vary run to run).
#[derive(Clone, Debug, Default)]
pub struct ShardLog {
    /// Frontier shards in the plan.
    pub shards: usize,
    /// Shards served from cache.
    pub cache_hits: usize,
    /// Shards that actually searched (misses + `--no-cache`).
    pub executed: usize,
    /// Corrupt cache entries detected (subset of `executed`).
    pub corrupt: usize,
    /// Whole-sweep wall clock, ms.
    pub wall_ms: u64,
}

/// The merged, deterministic result of one sharded sweep.
#[derive(Debug)]
pub struct SweepOutcome {
    pub spec: SweepSpec,
    pub shard_depth: usize,
    pub shards: usize,
    /// Distinct states: plan states + per-shard newly-visited sums.
    /// (States re-visited by sibling shards count once per shard — a
    /// deterministic over-approximation; see docs/checking.md.)
    pub states: u64,
    pub transitions: u64,
    pub max_depth: u64,
    pub truncated: bool,
    pub coverage: Coverage,
    /// The failing trace exactly as the search found it, with its
    /// shard prefix marked (`prefix_len`).
    pub raw_counterexample: Option<Counterexample>,
    /// The same failure after merge-time shrinking (what tests and the
    /// CLI lead with).
    pub counterexample: Option<Counterexample>,
}

impl SweepOutcome {
    /// Canonical JSON form: everything deterministic about the sweep,
    /// nothing about scheduling or caching. Two runs of the same spec
    /// agree iff these bytes agree.
    pub fn to_json(&self) -> Json {
        let mut o = Json::obj();
        o.push("spec", Json::Str(self.spec.key()));
        o.push("shard_depth", Json::U64(self.shard_depth as u64));
        o.push("shards", Json::U64(self.shards as u64));
        o.push("states", Json::U64(self.states));
        o.push("transitions", Json::U64(self.transitions));
        o.push("max_depth", Json::U64(self.max_depth));
        o.push("truncated", Json::U64(self.truncated as u64));
        o.push("coverage", coverage_to_json(&self.coverage));
        o.push(
            "counterexample",
            match (&self.raw_counterexample, &self.counterexample) {
                (Some(raw), Some(shrunk)) => {
                    let mut c = Json::obj();
                    c.push("raw_trace", Json::Str(encode_trace(&raw.trace)));
                    c.push("shard_prefix_len", Json::U64(raw.prefix_len as u64));
                    c.push("shrunk_trace", Json::Str(encode_trace(&shrunk.trace)));
                    c.push("failure", Json::Str(shrunk.failure.to_string()));
                    c
                }
                _ => Json::Null,
            },
        );
        o
    }

    /// Content fingerprint of the canonical form (the identity the
    /// determinism suite compares across `--jobs` and cache states).
    pub fn fingerprint(&self) -> Fingerprint {
        Fingerprint::of(self.to_json().to_pretty().as_bytes())
    }
}

/// Runs one sharded sweep: plan → (cache-probed) pool execution →
/// deterministic merge.
pub fn run_sweep(spec: &SweepSpec, opts: &ShardOptions) -> (SweepOutcome, ShardLog) {
    let t0 = Instant::now();
    let space = Space::new(spec);
    let plan = plan_shards(&space, opts.shard_depth);
    let mut log = ShardLog {
        shards: plan.prefixes.len(),
        ..Default::default()
    };

    let mut outcome = SweepOutcome {
        spec: spec.clone(),
        shard_depth: plan.depth,
        shards: plan.prefixes.len(),
        states: plan.states,
        transitions: plan.transitions,
        max_depth: plan.depth as u64,
        truncated: false,
        coverage: plan.coverage.clone(),
        raw_counterexample: None,
        counterexample: None,
    };

    if let Some(cex) = plan.prefix_failure {
        // The prefix region itself failed: no shards ran; the failure
        // predates any frontier split, so there is no shard prefix.
        outcome.raw_counterexample = Some(cex.clone());
        outcome.counterexample = Some(space.shrink(cex));
        log.wall_ms = t0.elapsed().as_millis() as u64;
        return (outcome, log);
    }

    let cache = ResultCache::new(&opts.cache_dir);
    let done = AtomicUsize::new(0);
    let total = plan.prefixes.len();
    let outcomes = map_parallel(opts.jobs, plan.prefixes, |_, (prefix, sys, remaining)| {
        let fp = Fingerprint::of_parts(
            [
                spec.key(),
                format!("depth={}", plan.depth),
                encode_trace(&prefix),
            ]
            .iter()
            .map(|s| s.as_str()),
        );
        let (result, hit, corrupt) = if opts.use_cache {
            match cache.load::<ShardResult>(fp) {
                Ok(rec) => (rec, true, false),
                Err(miss) => {
                    let corrupt = matches!(miss, Miss::Corrupt(_));
                    if let Miss::Corrupt(why) = &miss {
                        eprintln!("gwcheck: discarding corrupt shard {}: {why}", fp.hex());
                    }
                    let rec = space.run_shard(&sys, &remaining, &prefix);
                    let key = format!("{}|depth={}|prefix={}", spec.key(), plan.depth, {
                        encode_trace(&prefix)
                    });
                    if let Err(e) = cache.store(fp, &key, &rec) {
                        eprintln!("gwcheck: shard cache store failed for {}: {e}", fp.hex());
                    }
                    (rec, false, corrupt)
                }
            }
        } else {
            (space.run_shard(&sys, &remaining, &prefix), false, false)
        };
        if opts.progress {
            let n = done.fetch_add(1, Ordering::SeqCst) + 1;
            eprint!("\rgwcheck: {} {n}/{total} shards", spec.label());
            if n == total {
                eprintln!();
            }
        }
        (prefix, result, hit, corrupt)
    });

    // Deterministic merge, in frontier (plan) order.
    let mut first_failure: Option<(Vec<Action>, Vec<Action>)> = None;
    for (prefix, result, hit, corrupt) in outcomes {
        if hit {
            log.cache_hits += 1;
        } else {
            log.executed += 1;
        }
        if corrupt {
            log.corrupt += 1;
        }
        outcome.states += result.states;
        outcome.transitions += result.transitions;
        outcome.max_depth = outcome.max_depth.max(result.max_depth);
        outcome.truncated |= result.truncated;
        outcome.coverage.merge(&result.coverage);
        if first_failure.is_none() {
            if let Some(trace) = result.failure_trace {
                first_failure = Some((prefix, trace));
            }
        }
    }

    if let Some((prefix, trace)) = first_failure {
        // Reconstruct the failure by replaying the recorded trace —
        // the identical path whether the shard was freshly searched or
        // cache-loaded — then shrink at merge time.
        let failure = space
            .replay(&trace)
            .expect("recorded failing trace must reproduce on replay");
        let mut raw = Counterexample::new(trace, failure);
        raw.prefix_len = prefix.len();
        outcome.counterexample = Some(space.shrink(raw.clone()));
        outcome.raw_counterexample = Some(raw);
    }

    log.wall_ms = t0.elapsed().as_millis() as u64;
    (outcome, log)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ghostwriter_core::harness::Op;

    fn no_cache() -> ShardOptions {
        ShardOptions {
            use_cache: false,
            ..Default::default()
        }
    }

    #[test]
    fn spec_key_distinguishes_every_field() {
        let base = SweepSpec::new(ProtocolKind::Mesi, 2, 1, 2);
        let mut keys = vec![base.key()];
        for spec in [
            SweepSpec::new(ProtocolKind::Msi, 2, 1, 2),
            SweepSpec::new(ProtocolKind::Mesi, 3, 1, 2),
            SweepSpec::new(ProtocolKind::Mesi, 2, 2, 2),
            SweepSpec::new(ProtocolKind::Mesi, 2, 1, 1),
            SweepSpec {
                gi_timeouts: true,
                ..base.clone()
            },
            SweepSpec {
                tight_l1: true,
                ..base.clone()
            },
            SweepSpec {
                mutation: Some(Mutation::SkipInvalidation),
                ..base.clone()
            },
            SweepSpec {
                mutation: Some(Mutation::DeleteRow("gi_timeout")),
                ..base.clone()
            },
            SweepSpec {
                fault_budget: 1,
                ..base.clone()
            },
            SweepSpec {
                fault_budget: 2,
                ..base.clone()
            },
        ] {
            keys.push(spec.key());
        }
        let distinct: std::collections::HashSet<_> = keys.iter().collect();
        assert_eq!(distinct.len(), keys.len(), "colliding keys: {keys:?}");
    }

    /// The payload/data split changed the *representation* of in-flight
    /// messages but not the logical state space, and the fingerprint
    /// hashes logical messages, so cached shard records stay valid:
    /// CHECK_REVISION must not silently drift. Anyone bumping it should
    /// have changed the searched semantics, not just the encoding.
    #[test]
    fn check_revision_pinned() {
        assert_eq!(CHECK_REVISION, 3);
        assert!(SweepSpec::new(ProtocolKind::Mesi, 2, 1, 2)
            .key()
            .starts_with("check-rev=3|"));
    }

    #[test]
    fn shard_result_round_trips_through_cache_record() {
        let mut r = ShardResult {
            states: 7,
            transitions: 19,
            max_depth: 11,
            truncated: true,
            ..Default::default()
        };
        r.coverage.l1[0] = 3;
        r.coverage.dir[5] = 9;
        r.failure_trace = Some(vec![
            Action::Issue {
                core: 0,
                step: Step {
                    block: 1,
                    op: Op::Store,
                },
            },
            Action::Deliver { src: 0, dst: 2 },
        ]);
        let text = r.canonical_text();
        let back = ShardResult::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back.canonical_text(), text);
        assert_eq!(back.states, 7);
        assert_eq!(back.failure_trace, r.failure_trace);
        assert_eq!(back.coverage.l1[0], 3);
    }

    #[test]
    fn plan_depth_zero_is_one_root() {
        let spec = SweepSpec::new(ProtocolKind::Mesi, 2, 1, 1);
        let space = Space::new(&spec);
        let plan = plan_shards(&space, Some(0));
        assert_eq!(plan.depth, 0);
        assert_eq!(plan.prefixes.len(), 1);
        assert!(plan.prefixes[0].0.is_empty());
        assert_eq!(plan.states, 1);
    }

    #[test]
    fn deeper_plans_have_deduped_roots() {
        let spec = SweepSpec::new(ProtocolKind::Mesi, 2, 1, 2);
        let space = Space::new(&spec);
        let plan = plan_shards(&space, Some(2));
        assert_eq!(plan.depth, 2);
        assert!(plan.prefixes.len() > 1);
        // Roots are distinct states by construction.
        let keys: std::collections::HashSet<_> = plan
            .prefixes
            .iter()
            .map(|(_, sys, rem)| (sys.fingerprint(), pack_remaining(rem)))
            .collect();
        assert_eq!(keys.len(), plan.prefixes.len());
    }

    #[test]
    fn sharded_sweep_matches_across_shard_depths() {
        // Different shard depths re-partition the same space: the
        // failure verdict and coverage must agree even though state
        // counts differ (per-shard revisits).
        let spec = SweepSpec::new(ProtocolKind::Mesi, 2, 1, 2);
        let (at0, _) = run_sweep(
            &spec,
            &ShardOptions {
                shard_depth: Some(0),
                ..no_cache()
            },
        );
        let (at2, _) = run_sweep(
            &spec,
            &ShardOptions {
                shard_depth: Some(2),
                ..no_cache()
            },
        );
        assert!(at0.counterexample.is_none() && at2.counterexample.is_none());
        assert!(!at0.truncated && !at2.truncated);
        for (a, b) in at0.coverage.l1.iter().zip(&at2.coverage.l1) {
            assert_eq!(*a > 0, *b > 0);
        }
        for (a, b) in at0.coverage.dir.iter().zip(&at2.coverage.dir) {
            assert_eq!(*a > 0, *b > 0);
        }
    }

    #[test]
    fn mutated_sweep_reports_prefix_and_replay_command() {
        let spec = SweepSpec {
            mutation: Some(Mutation::SkipInvalidation),
            ..SweepSpec::new(ProtocolKind::Mesi, 2, 1, 2)
        };
        let (outcome, _) = run_sweep(
            &spec,
            &ShardOptions {
                shard_depth: Some(2),
                ..no_cache()
            },
        );
        let raw = outcome.raw_counterexample.expect("mutation caught");
        assert_eq!(raw.prefix_len, 2, "raw trace keeps the shard prefix");
        let described = raw.describe(&spec);
        assert!(described.contains("shard prefix (2 actions):"));
        assert!(described.contains("[shard prefix]"));
        assert!(described.contains("replay: gwcheck --protocol mesi"));
        let shrunk = outcome.counterexample.expect("shrunk present");
        assert!(shrunk.trace.len() <= 20);
        assert!(shrunk.describe(&spec).contains("--replay "));
    }
}
