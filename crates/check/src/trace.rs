//! Compact, stable text encoding of action traces.
//!
//! Counterexamples cross three boundaries that all need the same
//! serialized form: shard cache records on disk, the replay command
//! line a failing sweep prints, and the `gwcheck --replay` entry point
//! that consumes it. One token per action, comma-joined:
//!
//! ```text
//! i0:1s      core 0 issues Store on block 1
//! i2:0l1     core 2 issues Load{writer:1} on block 0
//! i1:0g4     core 1 issues Scribble{d:4} on block 0
//! d3>5       deliver head of the (3, 5) channel (node keys)
//! t0         fire core 0's GI-timeout sweep
//! x3>5       drop the head of the (3, 5) channel (bounded-fault mode)
//! u3>5       duplicate the head of the (3, 5) channel
//! c3>5       mark the head of the (3, 5) channel corrupt
//! r0         fire core 0's retry timeout
//! ```
//!
//! The encoding is injective and [`decode_trace`] is its strict
//! inverse; round-tripping is asserted by tests here and exercised
//! end-to-end by the replay-command integration test.

use ghostwriter_core::harness::Op;

use crate::{Action, Step};

/// Encodes one action as its token.
pub fn encode_action(action: Action) -> String {
    match action {
        Action::Issue { core, step } => {
            let op = match step.op {
                Op::Store => "s".to_string(),
                Op::Load { writer } => format!("l{writer}"),
                Op::Scribble { d } => format!("g{d}"),
            };
            format!("i{core}:{}{op}", step.block)
        }
        Action::Deliver { src, dst } => format!("d{src}>{dst}"),
        Action::GiTimeout { core } => format!("t{core}"),
        Action::Drop { src, dst } => format!("x{src}>{dst}"),
        Action::Duplicate { src, dst } => format!("u{src}>{dst}"),
        Action::Corrupt { src, dst } => format!("c{src}>{dst}"),
        Action::Retry { core } => format!("r{core}"),
    }
}

/// Encodes a trace as comma-joined tokens.
pub fn encode_trace(trace: &[Action]) -> String {
    trace
        .iter()
        .map(|&a| encode_action(a))
        .collect::<Vec<_>>()
        .join(",")
}

fn parse_usize(s: &str) -> Option<usize> {
    if s.is_empty() {
        return None;
    }
    s.parse().ok()
}

/// Decodes one token. Returns `None` on any malformed input.
pub fn decode_action(token: &str) -> Option<Action> {
    let (kind, rest) = token.split_at(token.char_indices().nth(1)?.0);
    match kind {
        "i" => {
            let (core, step) = rest.split_once(':')?;
            let core = parse_usize(core)?;
            // The block number is the leading digit run of the step.
            let split = step.find(|c: char| !c.is_ascii_digit())?;
            let block = parse_usize(&step[..split])?;
            let op_text = &step[split..];
            let op = match op_text.split_at(1) {
                ("s", "") => Op::Store,
                ("l", writer) => Op::Load {
                    writer: parse_usize(writer)?,
                },
                ("g", d) => Op::Scribble {
                    d: parse_usize(d)?.try_into().ok()?,
                },
                _ => return None,
            };
            Some(Action::Issue {
                core,
                step: Step { block, op },
            })
        }
        "d" | "x" | "u" | "c" => {
            let (src, dst) = rest.split_once('>')?;
            let src = parse_usize(src)?;
            let dst = parse_usize(dst)?;
            Some(match kind {
                "d" => Action::Deliver { src, dst },
                "x" => Action::Drop { src, dst },
                "u" => Action::Duplicate { src, dst },
                _ => Action::Corrupt { src, dst },
            })
        }
        "t" => Some(Action::GiTimeout {
            core: parse_usize(rest)?,
        }),
        "r" => Some(Action::Retry {
            core: parse_usize(rest)?,
        }),
        _ => None,
    }
}

/// Decodes a comma-joined trace; `None` if any token is malformed.
/// The empty string decodes to the empty trace.
pub fn decode_trace(text: &str) -> Option<Vec<Action>> {
    if text.is_empty() {
        return Some(Vec::new());
    }
    text.split(',').map(decode_action).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_actions() -> Vec<Action> {
        vec![
            Action::Issue {
                core: 0,
                step: Step {
                    block: 1,
                    op: Op::Store,
                },
            },
            Action::Issue {
                core: 2,
                step: Step {
                    block: 0,
                    op: Op::Load { writer: 1 },
                },
            },
            Action::Issue {
                core: 1,
                step: Step {
                    block: 12,
                    op: Op::Scribble { d: 4 },
                },
            },
            Action::Deliver { src: 3, dst: 5 },
            Action::Deliver { src: 10, dst: 0 },
            Action::GiTimeout { core: 7 },
            Action::Drop { src: 0, dst: 2 },
            Action::Duplicate { src: 2, dst: 0 },
            Action::Corrupt { src: 4, dst: 1 },
            Action::Retry { core: 1 },
        ]
    }

    #[test]
    fn round_trips_every_action_kind() {
        let actions = sample_actions();
        let text = encode_trace(&actions);
        assert_eq!(text, "i0:1s,i2:0l1,i1:12g4,d3>5,d10>0,t7,x0>2,u2>0,c4>1,r1");
        assert_eq!(decode_trace(&text), Some(actions));
    }

    #[test]
    fn empty_trace_round_trips() {
        assert_eq!(encode_trace(&[]), "");
        assert_eq!(decode_trace(""), Some(Vec::new()));
    }

    #[test]
    fn malformed_tokens_are_rejected() {
        for bad in [
            "x0",
            "i0",
            "i0:",
            "i0:s",
            "i0:1",
            "i0:1q",
            "i0:1l",
            "d3",
            "d3>",
            "d>5",
            "x3",
            "u3>",
            "c>5",
            "t",
            "r",
            "q0",
            "i0:1s,",
            ",",
            "i0:1s,,d0>1",
        ] {
            assert!(decode_trace(bad).is_none(), "accepted malformed {bad:?}");
        }
    }
}
