//! Exhaustive small-configuration sweeps (the acceptance gate): every
//! interleaving of every bounded program must be invariant-clean for
//! every protocol of the family ladder — MESI, MSI, MOESI, MOSI, MESIF,
//! Ghostwriter and Ghostwriter-over-MOESI. Bounded to seconds-to-tens of
//! seconds; the deeper sweeps live behind `--ignored`.

use ghostwriter_check::{sweep, Failure, Mutation, ProtocolKind};
use ghostwriter_core::harness::Violation;
use ghostwriter_core::L1RowId;

fn assert_clean(kind: ProtocolKind, cores: usize, blocks: usize, ops: usize) {
    let report = sweep(kind, cores, blocks, ops, false, None);
    if let Some((program, cex)) = &report.counterexample {
        panic!(
            "{kind:?} {cores}c/{blocks}b sweep found a violation\nprogram: {program:?}\n{}",
            cex.render(cores)
        );
    }
    assert!(
        !report.truncated,
        "{kind:?} sweep was truncated, not exhaustive"
    );
    assert!(report.programs > 0 && report.states > report.programs);
    assert!(
        !report.coverage.is_empty(),
        "{kind:?} sweep recorded no transition coverage"
    );
}

#[test]
fn mesi_two_core_one_block_exhaustive() {
    assert_clean(ProtocolKind::Mesi, 2, 1, 2);
}

#[test]
fn msi_two_core_one_block_exhaustive() {
    assert_clean(ProtocolKind::Msi, 2, 1, 2);
}

#[test]
fn ghostwriter_two_core_one_block_exhaustive() {
    assert_clean(ProtocolKind::Ghostwriter, 2, 1, 2);
}

// The O/F protocol regions (dirty sharing, writeback elision, clean
// forwarding and their races) need a second block in the pool before
// they fully appear, so the new family members gate at 2c/2b.

#[test]
fn moesi_two_core_two_block_exhaustive() {
    assert_clean(ProtocolKind::Moesi, 2, 2, 2);
}

#[test]
fn mosi_two_core_two_block_exhaustive() {
    assert_clean(ProtocolKind::Mosi, 2, 2, 2);
}

#[test]
fn mesif_two_core_two_block_exhaustive() {
    assert_clean(ProtocolKind::Mesif, 2, 2, 2);
}

#[test]
fn ghostwriter_over_moesi_two_core_one_block_exhaustive() {
    // GW-over-MOESI is a configuration, not a fork: the scribble rows
    // compose with the Owned-state rows in one checked row set.
    assert_clean(ProtocolKind::GhostwriterMoesi, 2, 1, 2);
}

#[test]
fn ghostwriter_with_timeout_interleavings() {
    // Two-step programs with GI-timeout sweeps woven into the schedule:
    // the timeout path must be race-free too. Two ops per core is the
    // minimum that forms a GI line at all (the victim needs an op to
    // acquire a tag and another to scribble it after invalidation), so
    // ops=1 would make this sweep vacuous.
    let report = sweep(ProtocolKind::Ghostwriter, 2, 1, 2, true, None);
    if let Some((program, cex)) = &report.counterexample {
        panic!(
            "timeout sweep violation\nprogram: {program:?}\n{}",
            cex.render(2)
        );
    }
    assert!(!report.truncated);
    assert!(
        report.coverage.l1_hits(L1RowId::GiTimeout) > 0,
        "timeout interleavings must exercise the gi_timeout row"
    );
}

#[test]
fn mutations_are_caught_by_the_sweep() {
    // The sweep must be able to find both seeded bugs on its own —
    // no hand-picked program.
    let skip = sweep(
        ProtocolKind::Mesi,
        2,
        1,
        2,
        false,
        Some(Mutation::SkipInvalidation),
    );
    let (_, cex) = skip
        .counterexample
        .expect("skipped invalidation must be caught");
    assert!(cex.trace.len() <= 20, "not shrunk:\n{}", cex.render(2));

    let drop = sweep(
        ProtocolKind::Mesi,
        2,
        1,
        2,
        false,
        Some(Mutation::DropInvAck),
    );
    let (_, cex) = drop.counterexample.expect("dropped ack must be caught");
    assert!(cex.trace.len() <= 20, "not shrunk:\n{}", cex.render(2));
}

#[test]
fn deleted_gi_timeout_row_caught_as_protocol_error() {
    // The table-level mutation: deleting the gi_timeout row from the
    // shared transition table must surface as a typed ProtocolError the
    // first time a schedule fires a timeout sweep on a live GI line —
    // found by the exhaustive search and shrunk like any other bug.
    let mutation = Mutation::parse("delete-row:gi_timeout").expect("known row name");
    let report = sweep(ProtocolKind::Ghostwriter, 2, 1, 2, true, Some(mutation));
    let (_, cex) = report
        .counterexample
        .expect("deleted gi_timeout row must be caught");
    assert!(
        matches!(cex.failure, Failure::Invariant(Violation::Protocol(_))),
        "expected a protocol error, got: {}",
        cex.failure
    );
    assert!(cex.trace.len() <= 20, "not shrunk:\n{}", cex.render(2));
}

#[test]
fn unknown_row_names_do_not_parse() {
    assert!(Mutation::parse("delete-row:no_such_row").is_none());
    assert!(Mutation::parse("delete-row:").is_none());
}

// ---- differential: unified sharded search vs per-program sweep -------
//
// The sharded engine replaces the per-program outer loop with one
// unified search (Issue actions choose the step, budgeted per core).
// The program family is the full cartesian product of the alphabet, so
// every (program, interleaving) path exists in the unified space and
// vice versa: both engines must agree that a config is clean and must
// exercise exactly the same set of transition rows.

fn assert_unified_matches_per_program(kind: ProtocolKind, gi: bool) {
    use ghostwriter_check::{run_sweep, ShardOptions, SweepSpec};
    let legacy = sweep(kind, 2, 1, 2, gi, None);
    assert!(legacy.counterexample.is_none() && !legacy.truncated);

    let spec = SweepSpec {
        gi_timeouts: gi,
        ..SweepSpec::new(kind, 2, 1, 2)
    };
    // Depth 0 = a single shard with one visited set, so `states` is
    // the exact distinct-state count of the unified space (deeper
    // plans deterministically over-count states that sibling shards
    // both reach; see docs/checking.md).
    let opts = ShardOptions {
        jobs: 2,
        shard_depth: Some(0),
        use_cache: false,
        ..Default::default()
    };
    let (unified, _) = run_sweep(&spec, &opts);
    assert!(unified.counterexample.is_none() && !unified.truncated);

    for (i, (a, b)) in legacy
        .coverage
        .l1
        .iter()
        .zip(&unified.coverage.l1)
        .enumerate()
    {
        assert_eq!(
            *a > 0,
            *b > 0,
            "{kind:?} gi={gi}: engines disagree on reaching L1 row {i}"
        );
    }
    for (i, (a, b)) in legacy
        .coverage
        .dir
        .iter()
        .zip(&unified.coverage.dir)
        .enumerate()
    {
        assert_eq!(
            *a > 0,
            *b > 0,
            "{kind:?} gi={gi}: engines disagree on reaching dir row {i}"
        );
    }
    // Prefix dedup must actually collapse the search: the unified
    // engine visits strictly fewer states than the per-program engine's
    // total across its whole program family.
    assert!(
        unified.states < legacy.states as u64,
        "{kind:?} gi={gi}: unified search ({}) not smaller than per-program ({})",
        unified.states,
        legacy.states
    );
}

#[test]
fn unified_search_matches_per_program_sweep_mesi() {
    assert_unified_matches_per_program(ProtocolKind::Mesi, false);
}

#[test]
fn unified_search_matches_per_program_sweep_ghostwriter_with_timeouts() {
    assert_unified_matches_per_program(ProtocolKind::Ghostwriter, true);
}

// ---- deeper sweeps, seconds-to-minutes: `cargo test -- --ignored` ----

#[test]
#[ignore]
fn mesi_two_core_two_block_exhaustive() {
    assert_clean(ProtocolKind::Mesi, 2, 2, 2);
}

#[test]
#[ignore]
fn mesi_three_core_one_block_exhaustive() {
    assert_clean(ProtocolKind::Mesi, 3, 1, 2);
}

#[test]
#[ignore]
fn ghostwriter_two_core_two_block_exhaustive() {
    assert_clean(ProtocolKind::Ghostwriter, 2, 2, 2);
}

#[test]
#[ignore]
fn moesi_three_core_one_block_exhaustive() {
    assert_clean(ProtocolKind::Moesi, 3, 1, 2);
}

#[test]
#[ignore]
fn mosi_three_core_one_block_exhaustive() {
    assert_clean(ProtocolKind::Mosi, 3, 1, 2);
}

#[test]
#[ignore]
fn mesif_three_core_one_block_exhaustive() {
    assert_clean(ProtocolKind::Mesif, 3, 1, 2);
}

#[test]
#[ignore]
fn ghostwriter_over_moesi_two_core_two_block_exhaustive() {
    assert_clean(ProtocolKind::GhostwriterMoesi, 2, 2, 2);
}

#[test]
#[ignore]
fn ghostwriter_three_core_timeouts_exhaustive() {
    let report = sweep(ProtocolKind::Ghostwriter, 3, 1, 1, true, None);
    if let Some((program, cex)) = &report.counterexample {
        panic!("violation\nprogram: {program:?}\n{}", cex.render(3));
    }
    assert!(!report.truncated);
}
