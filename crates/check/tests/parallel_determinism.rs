//! Determinism of the sharded parallel sweep (ISSUE PR 6).
//!
//! The contract under test: a sweep report is a pure function of its
//! [`SweepSpec`] and shard depth. Worker count, scheduling, and cache
//! state (cold vs warm) must be unobservable — `--jobs 1` and
//! `--jobs 8` produce fingerprint-identical [`SweepOutcome`]s, and a
//! warm re-run reproduces the cold run's bytes without searching.
//! This mirrors the golden-stats determinism suite in `crates/exp`.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};

use ghostwriter_check::{run_sweep, Mutation, ProtocolKind, ShardOptions, SweepSpec};

fn no_cache(jobs: usize) -> ShardOptions {
    ShardOptions {
        jobs,
        use_cache: false,
        ..Default::default()
    }
}

/// A unique throwaway cache directory per test invocation.
fn temp_cache_dir(tag: &str) -> PathBuf {
    static N: AtomicU32 = AtomicU32::new(0);
    let dir = std::env::temp_dir().join(format!(
        "gwcheck-test-{}-{tag}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn clean_sweep_is_jobs_invariant() {
    let spec = SweepSpec::new(ProtocolKind::Mesi, 2, 1, 2);
    let (seq, _) = run_sweep(&spec, &no_cache(1));
    let (par, _) = run_sweep(&spec, &no_cache(8));
    assert!(seq.counterexample.is_none());
    assert!(!seq.truncated);
    // Byte-level identity, not just equal fingerprints.
    assert_eq!(seq.to_json().to_pretty(), par.to_json().to_pretty());
    assert_eq!(seq.fingerprint(), par.fingerprint());
}

#[test]
fn ghostwriter_sweep_with_timeouts_is_jobs_invariant() {
    let spec = SweepSpec {
        gi_timeouts: true,
        ..SweepSpec::new(ProtocolKind::Ghostwriter, 2, 1, 2)
    };
    let (seq, _) = run_sweep(&spec, &no_cache(1));
    let (par, _) = run_sweep(&spec, &no_cache(8));
    assert!(seq.counterexample.is_none());
    assert_eq!(seq.to_json().to_pretty(), par.to_json().to_pretty());
}

#[test]
fn mutated_sweep_counterexample_is_jobs_invariant() {
    // The failing case is the interesting one: the counterexample (raw
    // trace, shard prefix, shrunk trace, failure text) must come out
    // identical no matter how shards were scheduled.
    let spec = SweepSpec {
        mutation: Some(Mutation::SkipInvalidation),
        ..SweepSpec::new(ProtocolKind::Mesi, 2, 1, 2)
    };
    let (seq, _) = run_sweep(&spec, &no_cache(1));
    let (par, _) = run_sweep(&spec, &no_cache(8));
    let a = seq.counterexample.as_ref().expect("mutation caught");
    let b = par.counterexample.as_ref().expect("mutation caught");
    assert_eq!(a.trace, b.trace);
    assert_eq!(a.failure.to_string(), b.failure.to_string());
    assert_eq!(seq.to_json().to_pretty(), par.to_json().to_pretty());
}

#[test]
fn explicit_shard_depths_are_jobs_invariant_too() {
    // The auto depth policy is itself deterministic, but pin depths
    // explicitly as well so a policy change can't mask a regression.
    let spec = SweepSpec::new(ProtocolKind::Msi, 2, 1, 2);
    for depth in [0, 1, 3] {
        let opts = |jobs| ShardOptions {
            shard_depth: Some(depth),
            ..no_cache(jobs)
        };
        let (seq, _) = run_sweep(&spec, &opts(1));
        let (par, _) = run_sweep(&spec, &opts(8));
        assert_eq!(
            seq.to_json().to_pretty(),
            par.to_json().to_pretty(),
            "depth {depth}"
        );
    }
}

#[test]
fn warm_cache_reproduces_cold_run_without_searching() {
    let dir = temp_cache_dir("warm");
    let spec = SweepSpec::new(ProtocolKind::Mesi, 2, 1, 2);
    let opts = |jobs| ShardOptions {
        jobs,
        cache_dir: dir.clone(),
        ..Default::default()
    };

    let (cold, cold_log) = run_sweep(&spec, &opts(2));
    assert!(cold_log.executed > 0, "cold run must search");
    assert_eq!(cold_log.cache_hits, 0);

    let (warm, warm_log) = run_sweep(&spec, &opts(8));
    assert_eq!(warm_log.executed, 0, "warm run must be all cache hits");
    assert_eq!(warm_log.cache_hits, warm.shards);
    assert_eq!(cold.to_json().to_pretty(), warm.to_json().to_pretty());
    assert_eq!(cold.fingerprint(), warm.fingerprint());

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn warm_cache_reproduces_mutated_counterexample_byte_identically() {
    // Failures are not serialized into shard records — the merge
    // replays the recorded trace — so cold and warm runs share one
    // code path and must agree on every byte of the counterexample.
    let dir = temp_cache_dir("warm-mut");
    let spec = SweepSpec {
        mutation: Some(Mutation::DropInvAck),
        ..SweepSpec::new(ProtocolKind::Mesi, 2, 1, 2)
    };
    let opts = ShardOptions {
        jobs: 2,
        cache_dir: dir.clone(),
        ..Default::default()
    };
    let (cold, cold_log) = run_sweep(&spec, &opts);
    let (warm, warm_log) = run_sweep(&spec, &opts);
    assert!(cold_log.executed > 0);
    assert_eq!(warm_log.executed, 0);
    assert!(cold.counterexample.is_some());
    assert_eq!(cold.to_json().to_pretty(), warm.to_json().to_pretty());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_cache_entry_is_a_miss_not_a_wrong_answer() {
    let dir = temp_cache_dir("corrupt");
    let spec = SweepSpec::new(ProtocolKind::Mesi, 2, 1, 1);
    let opts = ShardOptions {
        jobs: 1,
        cache_dir: dir.clone(),
        ..Default::default()
    };
    let (cold, _) = run_sweep(&spec, &opts);

    // Truncate every cached shard file mid-payload.
    let mut clobbered = 0;
    for entry in std::fs::read_dir(&dir).expect("cache dir exists") {
        let path = entry.unwrap().path();
        if path.extension().is_some_and(|e| e == "json") {
            let text = std::fs::read_to_string(&path).unwrap();
            std::fs::write(&path, &text[..text.len() / 2]).unwrap();
            clobbered += 1;
        }
    }
    assert!(clobbered > 0);

    let (rerun, log) = run_sweep(&spec, &opts);
    assert_eq!(log.corrupt, clobbered, "every clobbered entry re-ran");
    assert_eq!(log.executed, clobbered);
    assert_eq!(cold.to_json().to_pretty(), rerun.to_json().to_pretty());
    let _ = std::fs::remove_dir_all(&dir);
}
