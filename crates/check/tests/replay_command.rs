//! The replay command printed in a failure report must work verbatim
//! (ISSUE PR 6): this suite extracts the `replay: gwcheck …` line from
//! `Counterexample::describe`, runs the actual `gwcheck` binary with
//! exactly those arguments, and asserts the same failure reproduces.

use std::process::Command;

use ghostwriter_check::{run_sweep, Mutation, ProtocolKind, ShardOptions, SweepSpec};

fn opts() -> ShardOptions {
    ShardOptions {
        jobs: 2,
        use_cache: false,
        ..Default::default()
    }
}

/// Pulls the replay command out of a describe() report and splits it
/// into argv (the trace token contains no spaces, so whitespace
/// splitting is exact).
fn replay_argv(described: &str) -> Vec<String> {
    let line = described
        .lines()
        .find_map(|l| l.trim().strip_prefix("replay: "))
        .expect("describe() contains a replay line");
    let mut words = line.split_whitespace().map(str::to_string);
    assert_eq!(words.next().as_deref(), Some("gwcheck"));
    words.collect()
}

fn run_gwcheck(argv: &[String]) -> (i32, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_gwcheck"))
        .args(argv)
        .output()
        .expect("gwcheck runs");
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    (out.status.code().expect("gwcheck exits"), stdout)
}

#[test]
fn printed_replay_command_reproduces_the_failure() {
    let spec = SweepSpec {
        mutation: Some(Mutation::SkipInvalidation),
        ..SweepSpec::new(ProtocolKind::Mesi, 2, 1, 2)
    };
    let (outcome, _) = run_sweep(&spec, &opts());
    let cex = outcome.counterexample.expect("mutation caught");
    let described = cex.describe(&spec);
    let argv = replay_argv(&described);

    let (code, stdout) = run_gwcheck(&argv);
    assert_eq!(code, 1, "replay must reproduce the failure:\n{stdout}");
    assert!(stdout.contains("REPRODUCED"), "stdout: {stdout}");
    // The replayed failure is the same failure, verbatim.
    assert!(
        stdout.contains(&cex.failure.to_string()),
        "replay printed a different failure.\nwant: {}\ngot: {stdout}",
        cex.failure
    );
}

#[test]
fn raw_counterexample_replay_command_also_reproduces() {
    // The pre-shrink trace (with its shard prefix) must replay too —
    // it is what the search actually walked.
    let spec = SweepSpec {
        mutation: Some(Mutation::DropInvAck),
        ..SweepSpec::new(ProtocolKind::Mesi, 2, 1, 2)
    };
    let (outcome, _) = run_sweep(&spec, &opts());
    let raw = outcome.raw_counterexample.expect("mutation caught");
    assert!(raw.prefix_len > 0, "raw trace keeps its shard prefix");
    let argv = replay_argv(&raw.describe(&spec));
    let (code, stdout) = run_gwcheck(&argv);
    assert_eq!(code, 1, "raw replay must reproduce:\n{stdout}");
    assert!(
        stdout.contains(&raw.failure.to_string()),
        "stdout: {stdout}"
    );
}

#[test]
fn clean_trace_replay_exits_zero() {
    let (code, stdout) = run_gwcheck(&[
        "--protocol".into(),
        "mesi".into(),
        "--cores".into(),
        "2".into(),
        "--blocks".into(),
        "1".into(),
        "--ops".into(),
        "2".into(),
        "--replay".into(),
        "i0:0s,d0>2".into(),
    ]);
    assert_eq!(code, 0, "stdout: {stdout}");
    assert!(stdout.contains("CLEAN"), "stdout: {stdout}");
}

#[test]
fn malformed_trace_is_a_usage_error() {
    let (code, _) = run_gwcheck(&[
        "--protocol".into(),
        "mesi".into(),
        "--replay".into(),
        "i0:0s,bogus".into(),
    ]);
    assert_eq!(code, 2);
}
