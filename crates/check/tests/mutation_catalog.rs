//! Mutation-catalog regression suite (ISSUE PR 6): every seeded-bug
//! kind the checker supports is proven *caught* by the parallel
//! sharded sweep, with a shrunk counterexample of at most 20 steps.
//!
//! The `delete-row` cases pick one row per protocol region so a
//! search-space regression in any region (e.g. a geometry change that
//! silently stops exercising evictions) turns a test red rather than
//! quietly shrinking coverage:
//!
//! - `miss_load`          — the L1 load path
//! - `evict_m`            — L1 eviction (forced by `tight_l1`)
//! - `inv_ack_last_getx`  — directory invalidation collection
//! - `gi_timeout`         — the Ghostwriter GI timeout path
//! - `fwd_gets_m_to_o`    — the MOESI owner-data forward (M enters O)
//! - `evict_o`            — the O-eviction writeback (forced by `tight_l1`)
//! - `inv_owned`          — O invalidated by an upgrading sharer
//! - `data_fill_f`        — the MESIF Forward-grant fill
//! - `fwd_data_gets`      — the MESIF clean-forward chain at the directory

use ghostwriter_check::{run_sweep, Failure, Mutation, ProtocolKind, ShardOptions, SweepSpec};
use ghostwriter_core::harness::Violation;

fn opts() -> ShardOptions {
    ShardOptions {
        jobs: 4,
        use_cache: false,
        ..Default::default()
    }
}

/// Runs the sweep, asserts the mutation is caught with a ≤ 20-step
/// shrunk trace, and hands the failure to a per-case classifier.
fn assert_caught(spec: SweepSpec, classify: impl Fn(&Failure) -> bool) {
    let label = spec.label();
    let (outcome, _) = run_sweep(&spec, &opts());
    let cex = outcome
        .counterexample
        .as_ref()
        .unwrap_or_else(|| panic!("{label}: mutation not caught"));
    assert!(
        cex.trace.len() <= 20,
        "{label}: shrunk trace has {} steps (> 20):\n{}",
        cex.trace.len(),
        cex.describe(&spec)
    );
    assert!(
        classify(&cex.failure),
        "{label}: wrong failure class: {}",
        cex.failure
    );
    // The raw (pre-shrink) counterexample must carry its shard prefix
    // so the report can say where the search found it.
    let raw = outcome.raw_counterexample.as_ref().expect("raw kept");
    assert!(raw.trace.len() >= cex.trace.len());
}

fn deleted_row(failure: &Failure, row: &str) -> bool {
    match failure {
        Failure::Invariant(Violation::Protocol(e)) => e.to_string().contains(row),
        _ => false,
    }
}

#[test]
fn skip_invalidation_breaks_swmr() {
    let spec = SweepSpec {
        mutation: Some(Mutation::SkipInvalidation),
        ..SweepSpec::new(ProtocolKind::Mesi, 2, 1, 2)
    };
    assert_caught(spec, |f| {
        matches!(
            f,
            Failure::Invariant(
                Violation::WriterWithSharers { .. } | Violation::MultipleWriters { .. }
            )
        )
    });
}

#[test]
fn dropped_inv_ack_deadlocks() {
    let spec = SweepSpec {
        mutation: Some(Mutation::DropInvAck),
        ..SweepSpec::new(ProtocolKind::Mesi, 2, 1, 2)
    };
    assert_caught(spec, |f| matches!(f, Failure::Deadlock { .. }));
}

#[test]
fn deleted_l1_load_path_row_is_caught() {
    let spec = SweepSpec {
        mutation: Mutation::parse("delete-row:miss_load"),
        ..SweepSpec::new(ProtocolKind::Mesi, 1, 1, 1)
    };
    assert!(spec.mutation.is_some());
    assert_caught(spec, |f| deleted_row(f, "miss_load"));
}

#[test]
fn deleted_l1_eviction_row_is_caught_under_tight_l1() {
    // The default sweep geometry sizes the L1 so nothing ever evicts;
    // `tight_l1` pins it to one way so a second block forces the
    // eviction path into the explored space.
    let spec = SweepSpec {
        mutation: Mutation::parse("delete-row:evict_m"),
        tight_l1: true,
        ..SweepSpec::new(ProtocolKind::Mesi, 1, 2, 2)
    };
    assert_caught(spec, |f| deleted_row(f, "evict_m"));
}

#[test]
fn deleted_directory_invalidation_row_is_caught() {
    // GetX-with-sharers needs a requester holding no copy while two
    // other cores share the block, so this region first appears at
    // three cores: Ld, Ld (S via owner downgrade), then St.
    let spec = SweepSpec {
        mutation: Mutation::parse("delete-row:inv_ack_last_getx"),
        ..SweepSpec::new(ProtocolKind::Mesi, 3, 1, 1)
    };
    assert_caught(spec, |f| deleted_row(f, "inv_ack_last_getx"));
}

#[test]
fn deleted_gi_timeout_row_is_caught() {
    let spec = SweepSpec {
        mutation: Mutation::parse("delete-row:gi_timeout"),
        gi_timeouts: true,
        ..SweepSpec::new(ProtocolKind::Ghostwriter, 2, 1, 2)
    };
    assert_caught(spec, |f| deleted_row(f, "gi_timeout"));
}

#[test]
fn deleted_moesi_owner_forward_row_is_caught() {
    // First GETS on an M owner must take the M -> O transfer under
    // MOESI; with the row deleted the forward has nowhere to go.
    let spec = SweepSpec {
        mutation: Mutation::parse("delete-row:fwd_gets_m_to_o"),
        ..SweepSpec::new(ProtocolKind::Moesi, 2, 1, 1)
    };
    assert_caught(spec, |f| deleted_row(f, "fwd_gets_m_to_o"));
}

#[test]
fn deleted_o_eviction_writeback_row_is_caught() {
    // An O line holds the only valid bytes, so its eviction must write
    // back via PUTM; `tight_l1` plus a second block forces the eviction
    // into the explored space.
    let spec = SweepSpec {
        mutation: Mutation::parse("delete-row:evict_o"),
        tight_l1: true,
        ..SweepSpec::new(ProtocolKind::Moesi, 2, 2, 2)
    };
    assert_caught(spec, |f| deleted_row(f, "evict_o"));
}

#[test]
fn deleted_o_invalidation_row_is_caught() {
    // A sharer upgrading under MOESI invalidates the O owner (its clean
    // bytes match the owner's dirty ones); the owner needs `inv_owned`
    // to ack.
    let spec = SweepSpec {
        mutation: Mutation::parse("delete-row:inv_owned"),
        ..SweepSpec::new(ProtocolKind::Moesi, 2, 1, 2)
    };
    assert_caught(spec, |f| deleted_row(f, "inv_owned"));
}

#[test]
fn deleted_mesif_forward_fill_row_is_caught() {
    // MESIF answers the second reader with a Forward grant; the L1
    // needs `data_fill_f` to accept it.
    let spec = SweepSpec {
        mutation: Mutation::parse("delete-row:data_fill_f"),
        ..SweepSpec::new(ProtocolKind::Mesif, 2, 1, 1)
    };
    assert_caught(spec, |f| deleted_row(f, "data_fill_f"));
}

#[test]
fn deleted_mesif_clean_forward_row_is_caught() {
    // A third reader is served by the F holder, not the L2: the chain
    // E -> F -> forward first appears at three cores.
    let spec = SweepSpec {
        mutation: Mutation::parse("delete-row:fwd_data_gets"),
        ..SweepSpec::new(ProtocolKind::Mesif, 3, 1, 1)
    };
    assert_caught(spec, |f| deleted_row(f, "fwd_data_gets"));
}

#[test]
fn unknown_mutation_tokens_are_rejected() {
    assert!(Mutation::parse("delete-row:not_a_row").is_none());
    assert!(Mutation::parse("frobnicate").is_none());
}
