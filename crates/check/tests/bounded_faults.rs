//! Bounded-fault model checking (ISSUE PR 10).
//!
//! The contract under test: with `fault_budget = k`, message faults
//! (drop / duplicate / corrupt on the unreliable virtual channel) and
//! retry timeouts become explicit schedule actions, and the sweep
//! exhaustively proves that *every* interleaving with at most `k`
//! faults still completes — recovery is verified, not sampled. With the
//! retry row deleted, the same search must catch the resulting
//! wedged-forever state as a violation and shrink it to a short,
//! replayable trace. A budget of zero must leave the searched space,
//! the report, and every cache key exactly as they were before the
//! fault dimension existed.

use ghostwriter_check::shard::Space;
use ghostwriter_check::{
    check_config, run_sweep, Checker, Mutation, ProtocolKind, ShardOptions, Step, SweepSpec,
};
use ghostwriter_core::harness::Op;

fn no_cache(jobs: usize) -> ShardOptions {
    ShardOptions {
        jobs,
        use_cache: false,
        ..Default::default()
    }
}

fn faulty(kind: ProtocolKind, budget: usize) -> SweepSpec {
    SweepSpec {
        fault_budget: budget,
        ..SweepSpec::new(kind, 2, 1, 1)
    }
}

#[test]
fn bounded_fault_sweep_mesi_passes_exhaustively() {
    let (outcome, _) = run_sweep(&faulty(ProtocolKind::Mesi, 1), &no_cache(2));
    if let Some(cex) = &outcome.counterexample {
        panic!("recovery hole:\n{}", cex.describe(&outcome.spec));
    }
    assert!(!outcome.truncated, "budget-1 space must be exhausted");

    // The fault dimension strictly enlarges the space: every fault-free
    // interleaving is still in it (faults are optional actions).
    let (clean, _) = run_sweep(&faulty(ProtocolKind::Mesi, 0), &no_cache(2));
    assert!(outcome.states > clean.states);
}

#[test]
fn bounded_fault_sweep_ghostwriter_passes_exhaustively() {
    let (outcome, _) = run_sweep(&faulty(ProtocolKind::Ghostwriter, 1), &no_cache(2));
    if let Some(cex) = &outcome.counterexample {
        panic!("recovery hole:\n{}", cex.describe(&outcome.spec));
    }
    assert!(!outcome.truncated);
}

#[test]
fn budget_two_compound_faults_still_recover() {
    // Two faults can hit the same transaction (drop the request, then
    // drop the resent one; or drop the request and corrupt the eventual
    // fill) — the retry budget scales with the fault budget, so the
    // deeper space must still be failure-free.
    let (outcome, _) = run_sweep(&faulty(ProtocolKind::Mesi, 2), &no_cache(2));
    if let Some(cex) = &outcome.counterexample {
        panic!("recovery hole:\n{}", cex.describe(&outcome.spec));
    }
    assert!(!outcome.truncated);
    let (single, _) = run_sweep(&faulty(ProtocolKind::Mesi, 1), &no_cache(2));
    assert!(outcome.states > single.states);
}

#[test]
fn deleting_the_retry_row_is_a_caught_liveness_bug() {
    // The acceptance probe for the recovery rows: remove `retry_resend`
    // from the table and the ≤1-fault sweep must find the wedge (a
    // dropped request with no way to resend it), shrink it short, and
    // print a replay command that carries the fault budget.
    let spec = SweepSpec {
        mutation: Some(Mutation::DeleteRow("retry_resend")),
        ..faulty(ProtocolKind::Mesi, 1)
    };
    let (outcome, _) = run_sweep(&spec, &no_cache(2));
    let cex = outcome.counterexample.expect("retry-row deletion caught");
    assert!(
        cex.trace.len() <= 20,
        "shrunk trace too long: {} steps",
        cex.trace.len()
    );
    let described = cex.describe(&spec);
    assert!(described.contains("--fault-budget 1"), "{described}");
    assert!(described.contains("--mutation delete-row:retry_resend"));

    // The shrunk trace replays to a failure through the same space.
    let space = Space::new(&spec);
    assert!(space.replay(&cex.trace).is_some(), "shrunk trace replays");
}

#[test]
fn bounded_fault_sweep_is_jobs_invariant() {
    // The fault dimension must not leak scheduling into the report:
    // byte-identical outcomes across worker counts, like every other
    // sweep.
    let spec = faulty(ProtocolKind::Mesi, 1);
    let (seq, _) = run_sweep(&spec, &no_cache(1));
    let (par, _) = run_sweep(&spec, &no_cache(8));
    assert_eq!(seq.to_json().to_pretty(), par.to_json().to_pretty());
    assert_eq!(seq.fingerprint(), par.fingerprint());
}

#[test]
fn fault_free_keys_and_commands_are_unchanged() {
    // Budget 0 must not perturb cache keys (warm caches stay valid) or
    // replay commands; budget > 0 extends both.
    let clean = SweepSpec::new(ProtocolKind::Mesi, 2, 1, 2);
    assert!(!clean.key().contains("faults="));
    assert!(!clean.replay_command(&[]).contains("--fault-budget"));
    assert!(!clean.label().contains("+faults"));

    let budgeted = SweepSpec {
        fault_budget: 3,
        ..clean.clone()
    };
    assert!(budgeted.key().ends_with("|faults=3"));
    assert!(budgeted.replay_command(&[]).contains("--fault-budget 3"));
    assert!(budgeted.label().ends_with("+faults(3)"));
}

#[test]
fn per_program_checker_supports_fault_budgets_too() {
    // The per-program Checker shares the fault actions with the sharded
    // sweep: a single-store program under one fault must explore and
    // pass, and the fault actions must show up in its transition count.
    let cfg = check_config(ProtocolKind::Mesi, 2, 1);
    let program = vec![
        vec![Step {
            block: 0,
            op: Op::Store,
        }],
        vec![],
    ];
    let mut checker = Checker::new(cfg, program.clone());
    let clean = checker.check();
    assert!(clean.counterexample.is_none());

    checker.fault_budget = 1;
    let faulty = checker.check();
    if let Some(cex) = &faulty.counterexample {
        panic!("recovery hole:\n{}", cex.render(2));
    }
    assert!(!faulty.truncated);
    assert!(faulty.states > clean.states);
}
