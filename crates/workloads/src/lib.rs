//! Error-tolerant multi-threaded workloads for the Ghostwriter simulator.
//!
//! Rust ports of the paper's Table 2 applications (Phoenix: `histogram`,
//! `linear_regression`, `pca`; AxBench: `blackscholes`, `inversek2j`,
//! `jpeg`) plus the §2 dot-product microbenchmarks. Every workload is
//! execution-driven: its shared data structures live in simulated memory
//! and all array accesses go through the coherence protocol, so stale
//! values read from approximate blocks feed back into the computation —
//! producing real output error, measured against a precise execution.
//!
//! Inputs are synthetic and seeded (DESIGN.md §7.3 documents the
//! substitution for the original input files).

pub mod blackscholes;
pub mod dot;
pub mod histogram;
pub mod inversek2j;
pub mod jpeg;
pub mod kmeans;
pub mod linreg;
pub mod metrics;
pub mod pca;
pub mod registry;
pub mod runner;
pub mod sobel;
pub mod tuner;

pub use blackscholes::BlackScholes;
pub use dot::{BadDotProduct, GoodDotProduct};
pub use histogram::Histogram;
pub use inversek2j::InverseK2J;
pub use jpeg::Jpeg;
pub use kmeans::KMeans;
pub use linreg::LinearRegression;
pub use metrics::{mpe, nrmse, Metric};
pub use pca::Pca;
pub use registry::{
    extended_benchmarks, find_benchmark, micro_benchmarks, paper_benchmarks, BenchmarkEntry,
    ScaleClass, Suite, DEFAULT_SEED,
};
#[cfg(feature = "legacy-threads")]
pub use runner::execute_legacy;
pub use runner::{
    compare, compare_default, execute, execute_faulty, Comparison, RunOutcome, Workload,
};
pub use sobel::Sobel;
pub use tuner::{autotune, Candidate, TuneResult, DEFAULT_LADDER};
