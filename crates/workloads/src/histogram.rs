//! Phoenix `histogram`.
//!
//! Counts the R/G/B value distribution of an image. Following the Phoenix
//! map/reduce structure: each thread counts its pixel chunk into a
//! *block-padded private* partial histogram (no sharing in the map phase),
//! then after a barrier the threads cooperatively reduce the partials into
//! the shared final histogram, each owning a contiguous bin range.
//!
//! As in the paper (§4.2), this layout shows very little *runtime* false
//! sharing — the shared-array writes are few and mostly disjoint — so
//! Ghostwriter should neither help nor hurt: same performance, zero error.

use ghostwriter_core::{Addr, FinishedRun, Machine};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::metrics::Metric;
use crate::runner::Workload;

const BINS: usize = 256;
const CHANNELS: usize = 3;

/// The `histogram` workload over a synthetic RGB image.
pub struct Histogram {
    /// Interleaved RGB bytes.
    pixels: Vec<u8>,
    threads: usize,
    final_base: Addr,
}

impl Histogram {
    /// `pixels` RGB pixels (3 bytes each), seeded. The synthetic image has
    /// smooth channel distributions like a natural photo.
    pub fn new(seed: u64, pixel_count: usize) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut pixels = Vec::with_capacity(pixel_count * CHANNELS);
        for _ in 0..pixel_count {
            // Channel values cluster per-region, as in natural images.
            let base: u8 = rng.gen();
            for _ in 0..CHANNELS {
                let jitter: i16 = rng.gen_range(-24..=24);
                pixels.push((base as i16 + jitter).clamp(0, 255) as u8);
            }
        }
        Self {
            pixels,
            threads: 0,
            final_base: Addr(0),
        }
    }

    fn exact_counts(&self) -> Vec<i64> {
        let mut counts = vec![0i64; BINS * CHANNELS];
        for (i, &p) in self.pixels.iter().enumerate() {
            counts[(i % CHANNELS) * BINS + p as usize] += 1;
        }
        counts
    }
}

impl Workload for Histogram {
    fn name(&self) -> &'static str {
        "histogram"
    }

    fn metric(&self) -> Metric {
        Metric::Mpe
    }

    fn build(&mut self, m: &mut Machine, threads: usize, d: u8) {
        self.threads = threads;
        let n = self.pixels.len() / CHANNELS; // pixel count
        let img_base = m.alloc_padded(self.pixels.len() as u64);
        m.backdoor_write_u8s(img_base, &self.pixels);
        // Private partials: one padded region per thread.
        let partial_stride = (BINS * CHANNELS * 4).div_ceil(64) as u64 * 64;
        let partials_base = m.alloc_padded(partial_stride * threads as u64);
        // Shared final histogram (the annotated, approximatable array).
        self.final_base = m.alloc_padded((BINS * CHANNELS * 4) as u64);
        let final_base = self.final_base;

        let pixels_per = n.div_ceil(threads);
        for t in 0..threads {
            let lo = (t * pixels_per).min(n);
            let hi = ((t + 1) * pixels_per).min(n);
            // Reduce phase: thread t owns a contiguous range of the
            // 768 final bins.
            let bins_per = (BINS * CHANNELS).div_ceil(threads);
            let bin_lo = (t * bins_per).min(BINS * CHANNELS);
            let bin_hi = ((t + 1) * bins_per).min(BINS * CHANNELS);
            let my_partial = partials_base.add(partial_stride * t as u64);
            m.add_thread(move |ctx| async move {
                // Map: count privately (still through simulated memory,
                // but thread-private padded blocks — M-state hits).
                for i in (lo..hi).map(|p| p * CHANNELS) {
                    for c in 0..CHANNELS {
                        let v = ctx.load_u8(img_base.add((i + c) as u64)).await as usize;
                        let slot = my_partial.add(((c * BINS + v) * 4) as u64);
                        let cur = ctx.load_i32(slot).await;
                        ctx.store_i32(slot, cur + 1).await;
                    }
                }
                ctx.barrier().await;
                // Reduce: sum all threads' partials for my bin range into
                // the shared final histogram.
                ctx.approx_begin(d).await;
                for bin in bin_lo..bin_hi {
                    let mut sum = 0i32;
                    for u in 0..threads {
                        let p = partials_base.add(partial_stride * u as u64 + (bin * 4) as u64);
                        sum += ctx.load_i32(p).await;
                    }
                    ctx.scribble_i32(final_base.add((bin * 4) as u64), sum)
                        .await;
                }
                ctx.approx_end().await;
            });
        }
    }

    fn output(&self, run: &FinishedRun) -> Vec<f64> {
        (0..BINS * CHANNELS)
            .map(|b| run.read_i32(self.final_base.add((b * 4) as u64)) as f64)
            .collect()
    }

    fn reference(&self) -> Vec<f64> {
        self.exact_counts().iter().map(|&c| c as f64).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::execute;
    use ghostwriter_core::{MachineConfig, Protocol};

    #[test]
    fn exact_under_mesi() {
        let mut w = Histogram::new(3, 600);
        let out = execute(&mut w, MachineConfig::small(4, Protocol::Mesi), 4, 8);
        assert_eq!(out.error_percent, 0.0);
        // All 600 pixels counted in each channel.
        let per_channel: f64 = out.output[..BINS].iter().sum();
        assert_eq!(per_channel, 600.0);
    }

    #[test]
    fn little_false_sharing_and_no_error_under_ghostwriter() {
        // Paper §4.3: histogram shows negligible coherence misses, so
        // Ghostwriter neither helps nor hurts, and introduces ~no error.
        // Paper-sized caches (the tiny test L1 would add capacity misses
        // that have nothing to do with sharing), 4 cores.
        let run = |protocol| {
            let mut w = Histogram::new(3, 600);
            let cfg = MachineConfig {
                cores: 4,
                protocol,
                ..MachineConfig::default()
            };
            execute(&mut w, cfg, 4, 8)
        };
        let base = run(Protocol::Mesi);
        let gw = run(Protocol::ghostwriter());
        let miss_rate =
            base.report.stats.l1_misses() as f64 / base.report.stats.l1_accesses() as f64;
        assert!(
            miss_rate < 0.10,
            "histogram should have few misses: {miss_rate}"
        );
        assert!(gw.error_percent < 1.0, "error {}%", gw.error_percent);
        // Cycle counts stay in the same ballpark (no regression).
        let ratio = gw.report.cycles as f64 / base.report.cycles as f64;
        assert!(
            ratio < 1.05,
            "Ghostwriter must not slow histogram down: {ratio}"
        );
    }
}
