//! The workload abstraction and the paper's evaluation harness.
//!
//! A [`Workload`] knows how to populate a [`Machine`] with its inputs and
//! threads, how to read its output back from the final coherent memory
//! image, and what a precise execution produces. [`execute`] runs one
//! configuration; [`compare`] runs the paper's baseline-vs-Ghostwriter
//! experiment and derives every Fig. 7–11 quantity.

use ghostwriter_core::{
    FaultConfig, FinishedRun, Machine, MachineConfig, Protocol, SimAbort, SimReport,
};

use crate::metrics::Metric;

/// One benchmark, rebuildable for repeated runs with identical inputs.
pub trait Workload {
    /// Short identifier (paper Table 2 name).
    fn name(&self) -> &'static str;
    /// Output-quality metric for this application.
    fn metric(&self) -> Metric;
    /// Allocates inputs/outputs in `m` and registers `threads` simulated
    /// threads. `d` is the d-distance used by `approx_begin` (ignored
    /// under the MESI baseline, where scribbles demote to stores).
    fn build(&mut self, m: &mut Machine, threads: usize, d: u8);
    /// Reads the application output from the final coherent memory.
    fn output(&self, run: &FinishedRun) -> Vec<f64>;
    /// Output of a precise (sequential, exact) execution.
    fn reference(&self) -> Vec<f64>;
}

/// Result of one simulated execution.
pub struct RunOutcome {
    /// Full simulator report.
    pub report: SimReport,
    /// Application output read back from coherent memory.
    pub output: Vec<f64>,
    /// Output error vs the precise reference, in percent.
    pub error_percent: f64,
}

/// Runs `workload` once on a machine with `cfg`, `threads` threads and
/// d-distance `d`.
///
/// ```
/// use ghostwriter_core::{MachineConfig, Protocol};
/// use ghostwriter_workloads::{execute, BadDotProduct};
/// let mut w = BadDotProduct::new(1, 128, true);
/// let out = execute(&mut w, MachineConfig::small(2, Protocol::Mesi), 2, 4);
/// assert_eq!(out.error_percent, 0.0); // baseline MESI is exact
/// ```
pub fn execute(
    workload: &mut dyn Workload,
    cfg: MachineConfig,
    threads: usize,
    d: u8,
) -> RunOutcome {
    assert!(threads >= 1 && threads <= cfg.cores);
    run_built(workload, Machine::new(cfg), threads, d)
}

/// [`execute`], but on the pre-resumable OS-thread engine. Exists solely
/// so the differential suite can prove both engines produce bit-identical
/// results; never used by experiments.
#[cfg(feature = "legacy-threads")]
pub fn execute_legacy(
    workload: &mut dyn Workload,
    cfg: MachineConfig,
    threads: usize,
    d: u8,
) -> RunOutcome {
    assert!(threads >= 1 && threads <= cfg.cores);
    let mut m = Machine::new(cfg);
    m.use_legacy_engine();
    run_built(workload, m, threads, d)
}

/// [`execute`] under a fault-injection configuration, with the abort
/// surfaced as a value: a run that exhausts its retry budget (or hits
/// any other typed protocol error) returns `Err(SimAbort)` instead of
/// panicking, so a resilience campaign can record the cell as
/// unrecovered and keep sweeping.
pub fn execute_faulty(
    workload: &mut dyn Workload,
    cfg: MachineConfig,
    threads: usize,
    d: u8,
    faults: FaultConfig,
) -> Result<RunOutcome, SimAbort> {
    assert!(threads >= 1 && threads <= cfg.cores);
    let mut m = Machine::new(cfg);
    m.set_faults(faults);
    workload.build(&mut m, threads, d);
    let run = m.try_run()?;
    Ok(finish(workload, run))
}

fn run_built(workload: &mut dyn Workload, mut m: Machine, threads: usize, d: u8) -> RunOutcome {
    workload.build(&mut m, threads, d);
    finish(workload, m.run())
}

fn finish(workload: &dyn Workload, run: FinishedRun) -> RunOutcome {
    let output = workload.output(&run);
    let reference = workload.reference();
    let error_percent = workload.metric().evaluate(&reference, &output);
    RunOutcome {
        report: run.report,
        output,
        error_percent,
    }
}

/// The paper's per-application experiment: one baseline MESI run and one
/// Ghostwriter run on identical inputs, plus the derived quantities.
pub struct Comparison {
    /// Application name.
    pub name: &'static str,
    /// d-distance used for the Ghostwriter run.
    pub d: u8,
    /// Baseline MESI outcome.
    pub baseline: RunOutcome,
    /// Ghostwriter outcome.
    pub ghostwriter: RunOutcome,
}

impl Comparison {
    /// Fig. 7a: % of stores that would have missed on S serviced by GS.
    pub fn gs_serviced_percent(&self) -> f64 {
        self.ghostwriter.report.stats.gs_service_fraction() * 100.0
    }

    /// Fig. 7b: % of stores that would have missed on I serviced by GI.
    pub fn gi_serviced_percent(&self) -> f64 {
        self.ghostwriter.report.stats.gi_service_fraction() * 100.0
    }

    /// Fig. 8: Ghostwriter coherence traffic normalized to baseline.
    pub fn normalized_traffic(&self) -> f64 {
        self.ghostwriter
            .report
            .normalized_traffic_vs(&self.baseline.report)
    }

    /// Fig. 9: % dynamic energy saved in NoC + memory hierarchy.
    pub fn energy_saved_percent(&self) -> f64 {
        self.ghostwriter
            .report
            .energy_saved_percent_vs(&self.baseline.report)
    }

    /// Fig. 10: % speedup over the baseline.
    pub fn speedup_percent(&self) -> f64 {
        self.ghostwriter
            .report
            .speedup_percent_vs(&self.baseline.report)
    }

    /// Fig. 11: output error of the Ghostwriter run, in percent.
    pub fn output_error_percent(&self) -> f64 {
        self.ghostwriter.error_percent
    }
}

/// Runs the baseline/Ghostwriter pair for one workload. `factory` must
/// produce identically-seeded workloads.
pub fn compare(
    factory: &dyn Fn() -> Box<dyn Workload>,
    cores: usize,
    threads: usize,
    d: u8,
    gw_protocol: Protocol,
) -> Comparison {
    assert!(gw_protocol.is_ghostwriter());
    let mk_cfg = |protocol| MachineConfig {
        cores,
        protocol,
        ..MachineConfig::default()
    };
    let mut base_w = factory();
    let baseline = execute(base_w.as_mut(), mk_cfg(Protocol::Mesi), threads, d);
    assert_eq!(
        baseline.error_percent,
        0.0,
        "{}: baseline MESI must be exact",
        base_w.name()
    );
    let mut gw_w = factory();
    let name = gw_w.name();
    let ghostwriter = execute(gw_w.as_mut(), mk_cfg(gw_protocol), threads, d);
    Comparison {
        name,
        d,
        baseline,
        ghostwriter,
    }
}

/// Convenience wrapper using the paper's default Ghostwriter protocol.
pub fn compare_default(
    factory: &dyn Fn() -> Box<dyn Workload>,
    cores: usize,
    threads: usize,
    d: u8,
) -> Comparison {
    compare(factory, cores, threads, d, Protocol::ghostwriter())
}
