//! Phoenix `pca`: mean vector and covariance matrix of a data matrix.
//!
//! Phoenix's pca operates on an integer matrix in two phases: per-row
//! means, then the upper-triangular covariance matrix. Threads own row
//! ranges; every result element is written exactly once, and the shared
//! `mean`/`cov` rows are packed, so adjacent threads' writes falsely share
//! boundary blocks — but, as the paper observes (§4.2), coherence misses
//! are a tiny fraction of all accesses (the input-matrix loads dominate),
//! so Ghostwriter's impact is inconsequential despite high GI service
//! rates at 8-distance.
//!
//! The 4→8 distance jump in GI utilisation (paper Fig. 7b) comes from the
//! covariance values: writes land on invalidated blocks whose stale
//! contents are zero or a small neighbouring value, so values under 2⁸
//! pass the 8-distance check far more often than the 4-distance one.

use ghostwriter_core::{Addr, FinishedRun, Machine};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::metrics::Metric;
use crate::runner::Workload;

/// The `pca` workload.
pub struct Pca {
    rows: usize,
    cols: usize,
    matrix: Vec<i32>, // row-major rows×cols
    threads: usize,
    mean_base: Addr,
    cov_base: Addr,
}

impl Pca {
    /// A `rows × cols` integer matrix. Half the rows are near-constant
    /// (sensor channels with little activity), half vary strongly: the
    /// covariance entries between quiet rows cluster near zero — small
    /// enough to pass the 8-distance scribe check but rarely the
    /// 4-distance one, reproducing the paper's Fig. 7b jump in GI
    /// utilisation — while entries involving active rows are large and
    /// always publish conventionally.
    pub fn new(seed: u64, rows: usize, cols: usize) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut matrix = vec![0i32; rows * cols];
        for i in 0..rows {
            let base = rng.gen_range(0..1024);
            let amplitude = if i % 2 == 0 { 4 } else { 512 };
            for k in 0..cols {
                matrix[i * cols + k] = base + rng.gen_range(-amplitude..=amplitude);
            }
        }
        Self {
            rows,
            cols,
            matrix,
            threads: 0,
            mean_base: Addr(0),
            cov_base: Addr(0),
        }
    }

    fn exact(&self) -> (Vec<i32>, Vec<i32>) {
        let (r, c) = (self.rows, self.cols);
        let means: Vec<i32> = (0..r)
            .map(|i| {
                let s: i64 = (0..c).map(|j| self.matrix[i * c + j] as i64).sum();
                (s / c as i64) as i32
            })
            .collect();
        let mut cov = vec![0i32; r * r];
        for i in 0..r {
            for j in i..r {
                let mut s = 0i64;
                for k in 0..c {
                    s += (self.matrix[i * c + k] - means[i]) as i64
                        * (self.matrix[j * c + k] - means[j]) as i64;
                }
                cov[i * r + j] = (s / c as i64) as i32;
            }
        }
        (means, cov)
    }
}

impl Workload for Pca {
    fn name(&self) -> &'static str {
        "pca"
    }

    fn metric(&self) -> Metric {
        Metric::Nrmse
    }

    fn build(&mut self, m: &mut Machine, threads: usize, d: u8) {
        self.threads = threads;
        let (r, c) = (self.rows, self.cols);
        let mat_base = m.alloc_padded((r * c * 4) as u64);
        m.backdoor_write_i32s(mat_base, &self.matrix);
        self.mean_base = m.alloc_padded((r * 4) as u64);
        self.cov_base = m.alloc_padded((r * r * 4) as u64);
        let (mean_base, cov_base) = (self.mean_base, self.cov_base);

        let rows_per = r.div_ceil(threads);
        for t in 0..threads {
            let lo = (t * rows_per).min(r);
            let hi = ((t + 1) * rows_per).min(r);
            m.add_thread(move |ctx| async move {
                ctx.approx_begin(d).await;
                // Phase 1: row means (packed shared mean array).
                for i in lo..hi {
                    let mut s = 0i64;
                    for k in 0..c {
                        s += ctx.load_i32(mat_base.add(((i * c + k) * 4) as u64)).await as i64;
                    }
                    ctx.work(c as u64 / 4 + 1).await;
                    ctx.scribble_i32(mean_base.add((i * 4) as u64), (s / c as i64) as i32)
                        .await;
                }
                ctx.barrier().await;
                // Phase 2: covariance rows lo..hi (upper triangle).
                for i in lo..hi {
                    let mi = ctx.load_i32(mean_base.add((i * 4) as u64)).await;
                    for j in i..r {
                        let mj = ctx.load_i32(mean_base.add((j * 4) as u64)).await;
                        let mut s = 0i64;
                        for k in 0..c {
                            let a = ctx.load_i32(mat_base.add(((i * c + k) * 4) as u64)).await;
                            let b = ctx.load_i32(mat_base.add(((j * c + k) * 4) as u64)).await;
                            s += (a - mi) as i64 * (b - mj) as i64;
                        }
                        ctx.work(c as u64 / 2 + 1).await;
                        ctx.scribble_i32(
                            cov_base.add(((i * r + j) * 4) as u64),
                            (s / c as i64) as i32,
                        )
                        .await;
                    }
                }
                ctx.approx_end().await;
            });
        }
    }

    fn output(&self, run: &FinishedRun) -> Vec<f64> {
        let r = self.rows;
        let mut out = Vec::with_capacity(r + r * (r + 1) / 2);
        for i in 0..r {
            out.push(run.read_i32(self.mean_base.add((i * 4) as u64)) as f64);
        }
        for i in 0..r {
            for j in i..r {
                out.push(run.read_i32(self.cov_base.add(((i * r + j) * 4) as u64)) as f64);
            }
        }
        out
    }

    fn reference(&self) -> Vec<f64> {
        let (means, cov) = self.exact();
        let r = self.rows;
        let mut out = Vec::with_capacity(r + r * (r + 1) / 2);
        out.extend(means.iter().map(|&v| v as f64));
        for i in 0..r {
            for j in i..r {
                out.push(cov[i * r + j] as f64);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::execute;
    use ghostwriter_core::{MachineConfig, Protocol};

    #[test]
    fn exact_under_mesi() {
        let mut w = Pca::new(5, 16, 24);
        let out = execute(&mut w, MachineConfig::small(4, Protocol::Mesi), 4, 8);
        assert_eq!(out.error_percent, 0.0);
    }

    #[test]
    fn coherence_misses_are_rare() {
        let mut w = Pca::new(5, 16, 24);
        let out = execute(&mut w, MachineConfig::small(4, Protocol::Mesi), 4, 8);
        let s = &out.report.stats;
        // Upgrades + tagged-invalid stores are coherence misses; they must
        // be a small share of all accesses (paper: 0.1%).
        let coh = s.upgrades_from_s + s.stores_on_invalid_tagged;
        assert!(
            (coh as f64) < 0.05 * s.l1_accesses() as f64,
            "coherence misses should be rare: {coh} of {}",
            s.l1_accesses()
        );
    }

    #[test]
    fn low_error_under_ghostwriter() {
        let mut w = Pca::new(5, 16, 24);
        let out = execute(
            &mut w,
            MachineConfig::small(4, Protocol::ghostwriter()),
            4,
            8,
        );
        // NRMSE depends on the exact RNG stream (input matrix + scribble
        // interleaving), so the bound carries headroom over the observed
        // ~3.6% rather than pinning a stream-specific value.
        assert!(out.error_percent < 8.0, "NRMSE {}%", out.error_percent);
    }
}
