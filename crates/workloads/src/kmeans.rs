//! Phoenix `kmeans` (extension workload, beyond the paper's Table 2).
//!
//! Lloyd's algorithm over 2-D integer points, structured like the
//! Phoenix map-reduce version: each iteration the threads assign their
//! point chunk to the nearest centroid, accumulating into *private*
//! partial sums, then after a barrier cooperatively reduce the partials
//! into the packed shared centroid array.
//!
//! Ghostwriter angle: after the first few iterations the centroids move
//! very little, so the reduce phase's writes are bit-wise similar to the
//! values they overwrite — prime scribble territory. Because later
//! iterations *read* the (possibly stale) centroids to assign points,
//! this workload also exercises error feedback through control-flow-like
//! data, which is why its error is larger than the write-once kernels'.

use ghostwriter_core::{Addr, FinishedRun, Machine};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::metrics::Metric;
use crate::runner::Workload;

/// The `kmeans` workload: `n` points, `k` clusters, `iters` iterations.
pub struct KMeans {
    points: Vec<(i32, i32)>,
    k: usize,
    iters: usize,
    threads: usize,
    centroid_base: Addr,
}

impl KMeans {
    /// Seeded points drawn around `k` well-separated cluster centres.
    pub fn new(seed: u64, n: usize, k: usize, iters: usize) -> Self {
        assert!(k >= 1 && n >= k);
        let mut rng = StdRng::seed_from_u64(seed);
        let centres: Vec<(i32, i32)> = (0..k)
            .map(|_| (rng.gen_range(0..4096), rng.gen_range(0..4096)))
            .collect();
        let points = (0..n)
            .map(|i| {
                let (cx, cy) = centres[i % k];
                (
                    (cx + rng.gen_range(-256..=256)).clamp(0, 4095),
                    (cy + rng.gen_range(-256..=256)).clamp(0, 4095),
                )
            })
            .collect();
        Self {
            points,
            k,
            iters,
            threads: 0,
            centroid_base: Addr(0),
        }
    }

    /// Initial centroids: the first `k` points (deterministic).
    fn initial_centroids(&self) -> Vec<(i32, i32)> {
        self.points[..self.k].to_vec()
    }

    fn nearest(centroids: &[(i32, i32)], p: (i32, i32)) -> usize {
        let mut best = 0;
        let mut best_d = i64::MAX;
        for (c, &(cx, cy)) in centroids.iter().enumerate() {
            let dx = (p.0 - cx) as i64;
            let dy = (p.1 - cy) as i64;
            let d = dx * dx + dy * dy;
            if d < best_d {
                best_d = d;
                best = c;
            }
        }
        best
    }

    /// Precise reference: the same chunked/reduced algorithm run
    /// sequentially (integer arithmetic is order-independent, so only
    /// the per-iteration structure matters).
    fn exact(&self) -> Vec<(i32, i32)> {
        let mut centroids = self.initial_centroids();
        for _ in 0..self.iters {
            let mut sums = vec![(0i64, 0i64, 0i64); self.k];
            for &p in &self.points {
                let c = Self::nearest(&centroids, p);
                sums[c].0 += p.0 as i64;
                sums[c].1 += p.1 as i64;
                sums[c].2 += 1;
            }
            for c in 0..self.k {
                if sums[c].2 > 0 {
                    centroids[c] = (
                        (sums[c].0 / sums[c].2) as i32,
                        (sums[c].1 / sums[c].2) as i32,
                    );
                }
            }
        }
        centroids
    }
}

impl Workload for KMeans {
    fn name(&self) -> &'static str {
        "kmeans"
    }

    fn metric(&self) -> Metric {
        Metric::Nrmse
    }

    fn build(&mut self, m: &mut Machine, threads: usize, d: u8) {
        self.threads = threads;
        let n = self.points.len();
        let k = self.k;
        let iters = self.iters;
        let px_base = m.alloc_padded((n * 4) as u64);
        let py_base = m.alloc_padded((n * 4) as u64);
        m.backdoor_write_i32s(
            px_base,
            &self.points.iter().map(|p| p.0).collect::<Vec<_>>(),
        );
        m.backdoor_write_i32s(
            py_base,
            &self.points.iter().map(|p| p.1).collect::<Vec<_>>(),
        );
        // Shared centroid array, packed (cx, cy) pairs: k*8 bytes, so
        // several clusters' centroids share each block — reduce-phase
        // false sharing.
        self.centroid_base = m.alloc_padded((k * 8) as u64);
        let init = self.initial_centroids();
        for (c, &(cx, cy)) in init.iter().enumerate() {
            m.backdoor_write_i32s(self.centroid_base.add((c * 8) as u64), &[cx, cy]);
        }
        let centroid_base = self.centroid_base;
        // Per-thread partial sums: block-padded private regions of
        // k * (sx, sy, count) i64-ish i32 triples (i32 is enough at this
        // scale).
        let partial_stride = ((k * 12) as u64).div_ceil(64) * 64;
        let partials_base = m.alloc_padded(partial_stride * threads as u64);

        let chunk = n.div_ceil(threads);
        for t in 0..threads {
            let lo = (t * chunk).min(n);
            let hi = ((t + 1) * chunk).min(n);
            // Reduce assignment: thread t owns a contiguous centroid
            // range.
            let kc = k.div_ceil(threads);
            let klo = (t * kc).min(k);
            let khi = ((t + 1) * kc).min(k);
            let my_partial = partials_base.add(partial_stride * t as u64);
            m.add_thread(move |ctx| async move {
                ctx.approx_begin(d).await;
                for _ in 0..iters {
                    // Zero my partials (private blocks, M-state hits).
                    for c in 0..k {
                        for f in 0..3u64 {
                            ctx.store_i32(my_partial.add((c * 12) as u64 + 4 * f), 0)
                                .await;
                        }
                    }
                    // Map: assign my points against the shared (possibly
                    // stale) centroids.
                    for i in lo..hi {
                        let px = ctx.load_i32(px_base.add((i * 4) as u64)).await;
                        let py = ctx.load_i32(py_base.add((i * 4) as u64)).await;
                        let mut best = 0usize;
                        let mut best_d = i64::MAX;
                        for c in 0..k {
                            let cx = ctx.load_i32(centroid_base.add((c * 8) as u64)).await;
                            let cy = ctx.load_i32(centroid_base.add((c * 8 + 4) as u64)).await;
                            let dx = (px - cx) as i64;
                            let dy = (py - cy) as i64;
                            let dist = dx * dx + dy * dy;
                            if dist < best_d {
                                best_d = dist;
                                best = c;
                            }
                        }
                        ctx.work(4 * k as u64).await;
                        let slot = my_partial.add((best * 12) as u64);
                        let sx = ctx.load_i32(slot).await;
                        ctx.store_i32(slot, sx + px).await;
                        let sy = ctx.load_i32(slot.add(4)).await;
                        ctx.store_i32(slot.add(4), sy + py).await;
                        let cnt = ctx.load_i32(slot.add(8)).await;
                        ctx.store_i32(slot.add(8), cnt + 1).await;
                    }
                    ctx.barrier().await;
                    // Reduce: fold all partials for my centroid range and
                    // scribble the new centroids (bit-wise similar to the
                    // old ones once the clustering stabilises).
                    for c in klo..khi {
                        let mut sx = 0i64;
                        let mut sy = 0i64;
                        let mut cnt = 0i64;
                        for u in 0..threads {
                            let p = partials_base.add(partial_stride * u as u64 + (c * 12) as u64);
                            sx += ctx.load_i32(p).await as i64;
                            sy += ctx.load_i32(p.add(4)).await as i64;
                            cnt += ctx.load_i32(p.add(8)).await as i64;
                        }
                        if cnt > 0 {
                            ctx.scribble_i32(centroid_base.add((c * 8) as u64), (sx / cnt) as i32)
                                .await;
                            ctx.scribble_i32(
                                centroid_base.add((c * 8 + 4) as u64),
                                (sy / cnt) as i32,
                            )
                            .await;
                        }
                    }
                    ctx.barrier().await;
                }
                ctx.approx_end().await;
            });
        }
    }

    fn output(&self, run: &FinishedRun) -> Vec<f64> {
        (0..self.k)
            .flat_map(|c| {
                [
                    run.read_i32(self.centroid_base.add((c * 8) as u64)) as f64,
                    run.read_i32(self.centroid_base.add((c * 8 + 4) as u64)) as f64,
                ]
            })
            .collect()
    }

    fn reference(&self) -> Vec<f64> {
        self.exact()
            .into_iter()
            .flat_map(|(x, y)| [x as f64, y as f64])
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::execute;
    use ghostwriter_core::{MachineConfig, Protocol};

    #[test]
    fn exact_under_mesi() {
        let mut w = KMeans::new(21, 120, 4, 3);
        let out = execute(&mut w, MachineConfig::small(4, Protocol::Mesi), 4, 8);
        assert_eq!(out.error_percent, 0.0);
    }

    #[test]
    fn clusters_converge_to_centres() {
        let w = KMeans::new(21, 200, 4, 6);
        let finals = w.exact();
        // Every final centroid sits inside the point bounding box and
        // the centroids are distinct (separated input clusters).
        for &(x, y) in &finals {
            assert!((0..4096).contains(&x) && (0..4096).contains(&y));
        }
        for i in 0..finals.len() {
            for j in i + 1..finals.len() {
                assert_ne!(finals[i], finals[j], "centroids collapsed");
            }
        }
    }

    #[test]
    fn low_error_under_ghostwriter() {
        let mut w = KMeans::new(21, 120, 4, 3);
        let out = execute(
            &mut w,
            MachineConfig::small(4, Protocol::ghostwriter()),
            4,
            8,
        );
        // NRMSE depends on the exact RNG stream (input points + scribble
        // interleaving), so the bound carries headroom over the observed
        // ~5.4% rather than pinning a stream-specific value.
        assert!(out.error_percent < 10.0, "NRMSE {}%", out.error_percent);
    }
}
