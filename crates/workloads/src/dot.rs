//! The paper's running example (§2, Listings 1 & 2): parallel dot product.
//!
//! * [`BadDotProduct`] — Listing 1: every thread accumulates directly into
//!   `total[thread_id]`, a packed `i32` array, so up to 16 threads' slots
//!   share one cache block. Each accumulation is load + store on the same
//!   falsely-shared block: the pathological migratory false-sharing
//!   pattern. This is also the Fig. 12 timeout-sensitivity
//!   microbenchmark (`bad_dot_product`).
//! * [`GoodDotProduct`] — Listing 2: each thread accumulates in a register
//!   and performs one final store into a block-padded slot.
//!
//! Inputs mirror the Fig. 12 setup ("integers ranging in values from 0 to
//! 255"), drawn with a zero-heavy distribution typical of sparse
//! error-tolerant kernels, which is what gives the accumulator stream its
//! bit-wise value similarity (DESIGN.md §7.3).

use ghostwriter_core::{Addr, FinishedRun, Machine};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::metrics::Metric;
use crate::runner::Workload;

/// Generates the shared input vectors `a` and `b`.
fn gen_inputs(seed: u64, n: usize) -> (Vec<i32>, Vec<i32>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut gen = |_: usize| -> i32 {
        // Zero-heavy sparse values in 0..=255.
        if rng.gen_bool(0.70) {
            0
        } else if rng.gen_bool(0.8) {
            rng.gen_range(1..16)
        } else {
            rng.gen_range(16..256)
        }
    };
    let a: Vec<i32> = (0..n).map(&mut gen).collect();
    let b: Vec<i32> = (0..n).map(&mut gen).collect();
    (a, b)
}

/// Splits `0..n` into `threads` contiguous chunks.
fn chunk(n: usize, threads: usize, tid: usize) -> std::ops::Range<usize> {
    let per = n.div_ceil(threads);
    let lo = (tid * per).min(n);
    let hi = ((tid + 1) * per).min(n);
    lo..hi
}

/// Listing 1: false-sharing-prone parallel dot product.
pub struct BadDotProduct {
    n: usize,
    a: Vec<i32>,
    b: Vec<i32>,
    threads: usize,
    total_base: Addr,
    /// Whether stores to `total` are scribbles (the Fig. 12 configuration)
    /// or conventional stores (the Fig. 1 baseline behaviour).
    approximate: bool,
    /// Compute cycles charged per point (models the surrounding loop
    /// body; Fig. 1 uses a tight loop, Fig. 12 a realistic one).
    work_per_point: u64,
}

impl BadDotProduct {
    /// `n` input elements, seeded inputs. `approximate` enables scribbles
    /// on the shared accumulator array.
    pub fn new(seed: u64, n: usize, approximate: bool) -> Self {
        Self::with_work(seed, n, approximate, 1)
    }

    /// Like [`BadDotProduct::new`] with an explicit per-point compute
    /// cost.
    pub fn with_work(seed: u64, n: usize, approximate: bool, work_per_point: u64) -> Self {
        let (a, b) = gen_inputs(seed, n);
        Self {
            n,
            a,
            b,
            threads: 0,
            total_base: Addr(0),
            approximate,
            work_per_point,
        }
    }

    /// Address of thread `t`'s accumulator slot (packed, 4-byte stride —
    /// the false sharing is the point).
    fn slot(&self, t: usize) -> Addr {
        self.total_base.add(4 * t as u64)
    }
}

impl Workload for BadDotProduct {
    fn name(&self) -> &'static str {
        "bad_dot_product"
    }

    fn metric(&self) -> Metric {
        Metric::Mpe
    }

    fn build(&mut self, m: &mut Machine, threads: usize, d: u8) {
        self.threads = threads;
        let a_base = m.alloc_padded(4 * self.n as u64);
        let b_base = m.alloc_padded(4 * self.n as u64);
        // The shared accumulator array: *packed*, exactly as Listing 1.
        self.total_base = m.alloc_padded(4 * threads as u64);
        m.backdoor_write_i32s(a_base, &self.a);
        m.backdoor_write_i32s(b_base, &self.b);
        let n = self.n;
        let approximate = self.approximate;
        let total_base = self.total_base;
        let work = self.work_per_point;
        for t in 0..threads {
            let range = chunk(n, threads, t);
            m.add_thread(move |ctx| async move {
                if approximate {
                    ctx.approx_begin(d).await;
                }
                let slot = total_base.add(4 * t as u64);
                for i in range {
                    let x = ctx.load_i32(a_base.add(4 * i as u64)).await;
                    let y = ctx.load_i32(b_base.add(4 * i as u64)).await;
                    ctx.work(work).await; // the multiply-add + loop body
                    let acc = ctx.load_i32(slot).await;
                    let v = acc.wrapping_add(x.wrapping_mul(y));
                    if approximate {
                        ctx.scribble_i32(slot, v).await;
                    } else {
                        ctx.store_i32(slot, v).await;
                    }
                }
                if approximate {
                    ctx.approx_end().await;
                }
            });
        }
    }

    fn output(&self, run: &FinishedRun) -> Vec<f64> {
        (0..self.threads)
            .map(|t| run.read_i32(self.slot(t)) as f64)
            .collect()
    }

    fn reference(&self) -> Vec<f64> {
        // Before `build` assigns a thread count, fall back to a single
        // sequential partition (the per-chunk sums stay a pure function
        // of the seeded inputs either way).
        let parts = self.threads.max(1);
        (0..parts)
            .map(|t| {
                chunk(self.n, parts, t)
                    .map(|i| (self.a[i] as i64) * (self.b[i] as i64))
                    .sum::<i64>() as f64
            })
            .collect()
    }
}

/// Listing 2: privatized parallel dot product (register accumulator, one
/// final store into a padded slot).
pub struct GoodDotProduct {
    n: usize,
    a: Vec<i32>,
    b: Vec<i32>,
    threads: usize,
    total_base: Addr,
}

impl GoodDotProduct {
    /// `n` input elements with the same distribution as
    /// [`BadDotProduct`].
    pub fn new(seed: u64, n: usize) -> Self {
        let (a, b) = gen_inputs(seed, n);
        Self {
            n,
            a,
            b,
            threads: 0,
            total_base: Addr(0),
        }
    }
}

impl Workload for GoodDotProduct {
    fn name(&self) -> &'static str {
        "good_dot_product"
    }

    fn metric(&self) -> Metric {
        Metric::Mpe
    }

    fn build(&mut self, m: &mut Machine, threads: usize, _d: u8) {
        self.threads = threads;
        let a_base = m.alloc_padded(4 * self.n as u64);
        let b_base = m.alloc_padded(4 * self.n as u64);
        // One cache block per thread: no false sharing.
        self.total_base = m.alloc_padded(64 * threads as u64);
        m.backdoor_write_i32s(a_base, &self.a);
        m.backdoor_write_i32s(b_base, &self.b);
        let n = self.n;
        let total_base = self.total_base;
        for t in 0..threads {
            let range = chunk(n, threads, t);
            m.add_thread(move |ctx| async move {
                let mut sum = 0i32;
                for i in range {
                    let x = ctx.load_i32(a_base.add(4 * i as u64)).await;
                    let y = ctx.load_i32(b_base.add(4 * i as u64)).await;
                    ctx.work(1).await;
                    sum = sum.wrapping_add(x.wrapping_mul(y));
                }
                ctx.store_i32(total_base.add(64 * t as u64), sum).await;
            });
        }
    }

    fn output(&self, run: &FinishedRun) -> Vec<f64> {
        (0..self.threads)
            .map(|t| run.read_i32(self.total_base.add(64 * t as u64)) as f64)
            .collect()
    }

    fn reference(&self) -> Vec<f64> {
        // Before `build` assigns a thread count, fall back to a single
        // sequential partition (the per-chunk sums stay a pure function
        // of the seeded inputs either way).
        let parts = self.threads.max(1);
        (0..parts)
            .map(|t| {
                chunk(self.n, parts, t)
                    .map(|i| (self.a[i] as i64) * (self.b[i] as i64))
                    .sum::<i64>() as f64
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::execute;
    use ghostwriter_core::{MachineConfig, Protocol};

    #[test]
    fn chunking_covers_everything_once() {
        for n in [0usize, 1, 7, 64, 100] {
            for threads in [1usize, 2, 3, 8] {
                let mut seen = vec![0u8; n];
                for t in 0..threads {
                    for i in chunk(n, threads, t) {
                        seen[i] += 1;
                    }
                }
                assert!(seen.iter().all(|&c| c == 1), "n={n} threads={threads}");
            }
        }
    }

    #[test]
    fn bad_dot_exact_under_mesi() {
        let mut w = BadDotProduct::new(7, 256, true);
        let out = execute(&mut w, MachineConfig::small(4, Protocol::Mesi), 4, 4);
        assert_eq!(out.error_percent, 0.0);
        assert_eq!(out.output, w.reference());
    }

    #[test]
    fn good_dot_exact_under_both_protocols() {
        for protocol in [Protocol::Mesi, Protocol::ghostwriter()] {
            let mut w = GoodDotProduct::new(7, 256);
            let out = execute(&mut w, MachineConfig::small(4, protocol), 4, 4);
            assert_eq!(out.error_percent, 0.0, "protocol {protocol:?}");
        }
    }

    #[test]
    fn bad_dot_exhibits_false_sharing_misses() {
        let mut w = BadDotProduct::new(7, 512, false);
        let out = execute(&mut w, MachineConfig::small(4, Protocol::Mesi), 4, 4);
        // The packed accumulator array must generate store coherence
        // misses (upgrades/GETX after remote invalidations).
        assert!(
            out.report.stats.l1_store_misses > 100,
            "expected heavy store misses, got {}",
            out.report.stats.l1_store_misses
        );
    }

    #[test]
    fn good_dot_has_few_coherence_misses() {
        let mut w = GoodDotProduct::new(7, 512);
        let out = execute(&mut w, MachineConfig::small(4, Protocol::Mesi), 4, 4);
        assert!(
            out.report.stats.l1_store_misses < 20,
            "privatized version should not miss: {}",
            out.report.stats.l1_store_misses
        );
    }

    #[test]
    fn ghostwriter_reduces_bad_dot_traffic() {
        let run = |protocol| {
            let mut w = BadDotProduct::new(7, 512, true);
            execute(&mut w, MachineConfig::small(4, protocol), 4, 4)
        };
        let base = run(Protocol::Mesi);
        let gw = run(Protocol::ghostwriter());
        assert!(
            gw.report.stats.traffic.total() < base.report.stats.traffic.total(),
            "Ghostwriter should cut coherence traffic: {} vs {}",
            gw.report.stats.traffic.total(),
            base.report.stats.traffic.total()
        );
        assert!(gw.report.stats.serviced_by_gs + gw.report.stats.serviced_by_gi > 0);
    }
}
