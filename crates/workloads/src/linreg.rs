//! Phoenix `linear_regression`.
//!
//! The paper's strongest Ghostwriter case: each thread accumulates its
//! regression statistics into its own `lreg_args` structure, but the
//! structures are smaller than a cache block and packed contiguously, so
//! multiple threads' accumulators map to the same block — classic
//! migratory false sharing (paper §4.2: >12% of stores miss on shared
//! blocks, 22.8% traffic reduction at 8-distance).
//!
//! We mirror the Phoenix layout: a 52-byte `lreg_args` whose first five
//! `i32` slots are the accumulators (`SX, SY, SXX, SYY, SXY`), packed at
//! a 52-byte stride so neighbouring threads' structures straddle the same
//! 64-byte blocks. The application output is the regression slope and
//! intercept.

use ghostwriter_core::{Addr, FinishedRun, Machine};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::metrics::Metric;
use crate::runner::Workload;

// Fields per lreg_args: SX, SY, SXX, SYY, SXY (five i32 slots).
/// Phoenix's `lreg_args` is 52 bytes (the paper, §4.2): five accumulators
/// plus pointers/bookkeeping. Packed at the same 52-byte stride against a
/// 64-byte block, so adjacent threads' structures overlap block
/// boundaries — the false sharing the paper measures.
const STRIDE: u64 = 52;

/// The `linear_regression` workload.
pub struct LinearRegression {
    points: Vec<(u16, u16)>,
    threads: usize,
    args_base: Addr,
}

impl LinearRegression {
    /// `n` input points with byte-valued coordinates (Phoenix reads raw
    /// file bytes as points), seeded.
    pub fn new(seed: u64, n: usize) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        // y correlated with x. The magnitude distribution is heavy at
        // zero with occasional large spikes — the value-similarity
        // profile of error-tolerant data the paper exploits: most
        // accumulator updates are silent or disturb only low bits
        // (paper Fig. 2: 22.8% of overwritten values are 0-distance),
        // while spikes exceed any legal d-distance and therefore always
        // publish through the conventional protocol.
        let points = (0..n)
            .map(|_| {
                let x: u16 = if rng.gen_bool(0.70) {
                    0
                } else if rng.gen_bool(0.5) {
                    rng.gen_range(1..4)
                } else {
                    rng.gen_range(512..1024)
                };
                // y follows x with sparse, large independent spikes;
                // the spikes always exceed the 8-bit approximation
                // window (publishing conventionally) and give the
                // regression a large, well-conditioned intercept.
                let y: u16 = x / 2
                    + if rng.gen_bool(0.10) {
                        rng.gen_range(1024..2048)
                    } else {
                        0
                    };
                (x, y)
            })
            .collect();
        Self {
            points,
            threads: 0,
            args_base: Addr(0),
        }
    }

    fn field_addr(&self, t: usize, f: u64) -> Addr {
        self.args_base.add(STRIDE * t as u64 + 4 * f)
    }

    /// Per-thread exact sums, mirroring the simulated partitioning.
    /// Before `build` assigns a thread count this degenerates to a
    /// single sequential partition, which yields the same regression
    /// (only the totals feed `regression_from`).
    fn exact_sums(&self) -> Vec<[i64; 5]> {
        let parts = self.threads.max(1);
        let mut sums = vec![[0i64; 5]; parts];
        for (i, &(x, y)) in self.points.iter().enumerate() {
            let t = i % parts;
            let (x, y) = (x as i64, y as i64);
            sums[t][0] += x;
            sums[t][1] += y;
            sums[t][2] += x * x;
            sums[t][3] += y * y;
            sums[t][4] += x * y;
        }
        sums
    }

    /// Raw per-thread sums from a finished run (debugging/analysis).
    pub fn sums_from(&self, run: &FinishedRun) -> Vec<[i64; 5]> {
        (0..self.threads)
            .map(|t| {
                let mut s = [0i64; 5];
                for (f, slot) in s.iter_mut().enumerate() {
                    *slot = run.read_i32(self.field_addr(t, f as u64)) as i64;
                }
                s
            })
            .collect()
    }

    /// Exact per-thread sums (public for analysis binaries).
    pub fn exact_sums_public(&self) -> Vec<[i64; 5]> {
        self.exact_sums()
    }

    fn regression_from(sums: &[[i64; 5]], n: usize) -> Vec<f64> {
        let mut tot = [0f64; 5];
        for s in sums {
            for f in 0..5 {
                tot[f] += s[f] as f64;
            }
        }
        let n = n as f64;
        let (sx, sy, sxx, _syy, sxy) = (tot[0], tot[1], tot[2], tot[3], tot[4]);
        let denom = n * sxx - sx * sx;
        let slope = (n * sxy - sx * sy) / denom;
        let intercept = (sy - slope * sx) / n;
        vec![slope, intercept]
    }
}

impl Workload for LinearRegression {
    fn name(&self) -> &'static str {
        "linear_regression"
    }

    fn metric(&self) -> Metric {
        Metric::Mpe
    }

    fn build(&mut self, m: &mut Machine, threads: usize, d: u8) {
        self.threads = threads;
        let n = self.points.len();
        let x_base = m.alloc_padded(2 * n as u64);
        let y_base = m.alloc_padded(2 * n as u64);
        // The packed lreg_args array: the false sharing is the point.
        self.args_base = m.alloc_padded(STRIDE * threads as u64);
        for (i, p) in self.points.iter().enumerate() {
            m.backdoor_write(x_base.add(2 * i as u64), &p.0.to_le_bytes());
            m.backdoor_write(y_base.add(2 * i as u64), &p.1.to_le_bytes());
        }
        let args_base = self.args_base;
        for t in 0..threads {
            // Phoenix assigns points round-robin via the chunked file; we
            // use a strided partition so every thread updates throughout
            // the run (maximising the migratory pattern).
            let my: Vec<usize> = (t..n).step_by(threads).collect();
            m.add_thread(move |ctx| async move {
                ctx.approx_begin(d).await;
                let base = args_base.add(STRIDE * t as u64);
                for i in my {
                    let x = ctx.load_u16(x_base.add(2 * i as u64)).await as i32;
                    let y = ctx.load_u16(y_base.add(2 * i as u64)).await as i32;
                    // Per-point parse cost of the Phoenix kernel (text
                    // parsing + pointer chasing; keeps the accumulator
                    // update rate in the regime of the paper's machine).
                    ctx.work(64).await;
                    let deltas = [x, y, x * x, y * y, x * y];
                    for (f, &dv) in deltas.iter().enumerate() {
                        let a = base.add(4 * f as u64);
                        let cur = ctx.load_i32(a).await;
                        ctx.scribble_i32(a, cur.wrapping_add(dv)).await;
                        // Arithmetic between the field updates.
                        ctx.work(12).await;
                    }
                }
                ctx.approx_end().await;
            });
        }
    }

    fn output(&self, run: &FinishedRun) -> Vec<f64> {
        let sums: Vec<[i64; 5]> = (0..self.threads)
            .map(|t| {
                let mut s = [0i64; 5];
                for (f, slot) in s.iter_mut().enumerate() {
                    *slot = run.read_i32(self.field_addr(t, f as u64)) as i64;
                }
                s
            })
            .collect();
        Self::regression_from(&sums, self.points.len())
    }

    fn reference(&self) -> Vec<f64> {
        Self::regression_from(&self.exact_sums(), self.points.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::execute;
    use ghostwriter_core::{MachineConfig, Protocol};

    #[test]
    fn exact_under_mesi() {
        let mut w = LinearRegression::new(11, 400);
        let out = execute(&mut w, MachineConfig::small(4, Protocol::Mesi), 4, 8);
        assert_eq!(out.error_percent, 0.0);
        // Sanity: slope of the generated data is near 0.5.
        assert!((out.output[0] - 0.5).abs() < 0.2, "slope {}", out.output[0]);
    }

    #[test]
    fn heavy_false_sharing_under_mesi() {
        let mut w = LinearRegression::new(11, 400);
        let out = execute(&mut w, MachineConfig::small(4, Protocol::Mesi), 4, 8);
        let s = &out.report.stats;
        // Packed accumulators: a large share of stores must take
        // coherence transactions.
        assert!(
            s.l1_store_misses * 10 > s.stores,
            "expected >10% store misses: {} of {}",
            s.l1_store_misses,
            s.stores
        );
    }

    #[test]
    fn ghostwriter_services_stores_with_low_error() {
        let mut w = LinearRegression::new(11, 400);
        let out = execute(
            &mut w,
            MachineConfig::small(4, Protocol::ghostwriter()),
            4,
            8,
        );
        assert!(
            out.report.stats.serviced_by_gs > 0,
            "GS must service some shared-store misses"
        );
        assert!(
            out.error_percent < 5.0,
            "error should be low: {}%",
            out.error_percent
        );
    }

    #[test]
    fn ghostwriter_cuts_traffic_and_cycles() {
        let run = |protocol| {
            let mut w = LinearRegression::new(11, 600);
            execute(&mut w, MachineConfig::small(8, protocol), 8, 8)
        };
        let base = run(Protocol::Mesi);
        let gw = run(Protocol::ghostwriter());
        assert!(gw.report.stats.traffic.total() < base.report.stats.traffic.total());
        assert!(gw.report.cycles <= base.report.cycles);
    }
}
