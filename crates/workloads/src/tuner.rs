//! Quality auto-tuning (paper §3.5).
//!
//! The paper points to auto-tuning frameworks (Green, SAGE, ...) that
//! "automatically select the approximate regions and d-distance for an
//! output quality target specified by the user". This module implements
//! that loop for Ghostwriter: given a workload and an output-error
//! budget, it profiles candidate d-distances against the precise
//! baseline and returns the most aggressive setting whose measured error
//! stays within budget — mirroring the offline profile-guided flow the
//! paper describes (§3.1, §3.5).

use ghostwriter_core::Protocol;

use crate::runner::{compare, Comparison, Workload};

/// One profiled candidate.
#[derive(Clone, Copy, Debug)]
pub struct Candidate {
    /// d-distance evaluated.
    pub d: u8,
    /// Measured output error, percent.
    pub error_percent: f64,
    /// Speedup over the precise baseline, percent.
    pub speedup_percent: f64,
    /// Coherence traffic normalized to the baseline.
    pub normalized_traffic: f64,
}

/// Outcome of an auto-tuning run.
pub struct TuneResult {
    /// Chosen d-distance (under the default Fallback GI policy, d = 0
    /// approximates only silent stores and is exact).
    pub chosen_d: u8,
    /// The chosen candidate's measurements.
    pub chosen: Candidate,
    /// Every candidate profiled, in evaluation order.
    pub profile: Vec<Candidate>,
}

/// Default candidate ladder, most aggressive first.
pub const DEFAULT_LADDER: [u8; 6] = [12, 8, 6, 4, 2, 0];

/// Profiles `factory`'s workload over `ladder` (descending d) and picks
/// the largest d whose output error is within `error_budget_percent`.
///
/// `protocol` must be a Ghostwriter variant; the same configuration
/// (timeout, policies) is used at every d.
pub fn autotune(
    factory: &dyn Fn() -> Box<dyn Workload>,
    cores: usize,
    threads: usize,
    error_budget_percent: f64,
    ladder: &[u8],
    protocol: Protocol,
) -> TuneResult {
    assert!(protocol.is_ghostwriter(), "tuning needs Ghostwriter");
    assert!(!ladder.is_empty());
    let mut profile = Vec::new();
    let mut chosen: Option<Candidate> = None;
    for &d in ladder {
        let cmp: Comparison = compare(factory, cores, threads, d, protocol);
        let cand = Candidate {
            d,
            error_percent: cmp.output_error_percent(),
            speedup_percent: cmp.speedup_percent(),
            normalized_traffic: cmp.normalized_traffic(),
        };
        profile.push(cand);
        if cand.error_percent <= error_budget_percent {
            chosen = Some(cand);
            break; // ladder is descending: first fit is the largest d
        }
    }
    let chosen = chosen.unwrap_or_else(|| {
        // No ladder entry met the budget. Profile d = 0 too (silent
        // stores only — exact under the default Fallback GI policy) and
        // pick the minimum-error candidate overall.
        if !ladder.contains(&0) {
            let cmp = compare(factory, cores, threads, 0, protocol);
            profile.push(Candidate {
                d: 0,
                error_percent: cmp.output_error_percent(),
                speedup_percent: cmp.speedup_percent(),
                normalized_traffic: cmp.normalized_traffic(),
            });
        }
        *profile
            .iter()
            .min_by(|a, b| {
                a.error_percent
                    .partial_cmp(&b.error_percent)
                    .expect("errors are finite")
            })
            .expect("profile nonempty")
    });
    TuneResult {
        chosen_d: chosen.d,
        chosen,
        profile,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dot::BadDotProduct;
    use crate::jpeg::Jpeg;

    #[test]
    fn tuned_error_respects_budget() {
        let result = autotune(
            &|| Box::new(Jpeg::new(17, 16, 16)),
            4,
            4,
            0.5,
            &DEFAULT_LADDER,
            Protocol::ghostwriter(),
        );
        assert!(
            result.chosen.error_percent <= 0.5,
            "budget violated: {}",
            result.chosen.error_percent
        );
    }

    #[test]
    fn looser_budget_allows_larger_d() {
        let run = |budget| {
            autotune(
                &|| Box::new(Jpeg::new(17, 16, 16)),
                4,
                4,
                budget,
                &DEFAULT_LADDER,
                Protocol::ghostwriter(),
            )
            .chosen_d
        };
        let tight = run(0.0);
        let loose = run(100.0);
        assert!(loose >= tight, "loose {loose} < tight {tight}");
        assert_eq!(run(100.0), DEFAULT_LADDER[0], "everything fits");
    }

    #[test]
    fn impossible_budget_picks_minimum_error() {
        // The pathological microbenchmark under Capture semantics has
        // error at every d (even d = 0: silent-store entries to GI
        // capture later stores), so a zero budget cannot be met; the
        // tuner must return the least-bad candidate.
        let result = autotune(
            &|| Box::new(BadDotProduct::with_work(1, 400, true, 8)),
            4,
            4,
            0.0,
            &[8, 4],
            Protocol::ghostwriter_capture(256),
        );
        assert_eq!(result.profile.len(), 3, "both ladder rungs + d=0");
        let min = result
            .profile
            .iter()
            .map(|c| c.error_percent)
            .fold(f64::INFINITY, f64::min);
        assert_eq!(result.chosen.error_percent, min);
    }

    #[test]
    fn zero_budget_met_by_d0_under_fallback() {
        // Under the default Fallback policy, d = 0 (silent stores only)
        // is exact, so even a zero budget is satisfiable.
        let result = autotune(
            &|| Box::new(BadDotProduct::with_work(1, 400, true, 8)),
            4,
            4,
            0.0,
            &[4, 0],
            Protocol::ghostwriter(),
        );
        assert_eq!(result.chosen.error_percent, 0.0);
    }
}
