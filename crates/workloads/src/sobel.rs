//! AxBench `sobel` (extension workload, beyond the paper's Table 2).
//!
//! 3×3 Sobel edge detection over a grayscale image: each thread computes
//! the gradient magnitude for its rows and writes it into the packed
//! shared output, in 12.4 fixed point (the AxBench kernel's float
//! magnitude, here scaled by 16). On smooth regions the gradient is
//! tiny, so the scaled value stays under 2⁸ and is bit-wise similar to
//! the zero-initialised output — 8-distance scribbles absorb a share of
//! the boundary-contention misses; edges exceed the window and always
//! publish conventionally. A lost approximate write leaves a near-zero
//! gradient where the true gradient was near zero — bounded,
//! imperceptible error, the same harmless-loss regime as `pca`.

use ghostwriter_core::{Addr, FinishedRun, Machine};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::metrics::Metric;
use crate::runner::Workload;

/// Fixed-point scale of the gradient output (12.4).
pub const GRAD_SCALE: i32 = 16;

/// Sobel gradient magnitude at (x, y) in 12.4 fixed point,
/// clamped to 255·16.
pub fn sobel_at(img: &[u8], w: usize, h: usize, x: usize, y: usize) -> i32 {
    if x == 0 || y == 0 || x + 1 >= w || y + 1 >= h {
        return 0;
    }
    let p = |dx: isize, dy: isize| -> i32 {
        img[((y as isize + dy) as usize) * w + (x as isize + dx) as usize] as i32
    };
    let gx = -p(-1, -1) - 2 * p(-1, 0) - p(-1, 1) + p(1, -1) + 2 * p(1, 0) + p(1, 1);
    let gy = -p(-1, -1) - 2 * p(0, -1) - p(1, -1) + p(-1, 1) + 2 * p(0, 1) + p(1, 1);
    ((((gx * gx + gy * gy) as f64).sqrt() * GRAD_SCALE as f64) as i32).min(255 * GRAD_SCALE)
}

/// The `sobel` workload over a `width × height` grayscale image.
pub struct Sobel {
    width: usize,
    height: usize,
    pixels: Vec<u8>,
    threads: usize,
    out_base: Addr,
}

impl Sobel {
    /// Synthetic image: smooth background with a few sharp rectangles
    /// (so the gradient field is mostly near-zero with strong edges).
    pub fn new(seed: u64, width: usize, height: usize) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut pixels: Vec<u8> = (0..width * height)
            .map(|i| {
                let (x, y) = (i % width, i / width);
                ((x * 96 / width + y * 64 / height) as i32 + rng.gen_range(-3..=3)).clamp(0, 255)
                    as u8
            })
            .collect();
        for _ in 0..3 {
            let rx = rng.gen_range(0..width / 2);
            let ry = rng.gen_range(0..height / 2);
            let rw = rng.gen_range(width / 8..width / 3);
            let rh = rng.gen_range(height / 8..height / 3);
            let level: u8 = rng.gen_range(180..=255);
            for y in ry..(ry + rh).min(height) {
                for x in rx..(rx + rw).min(width) {
                    pixels[y * width + x] = level;
                }
            }
        }
        Self {
            width,
            height,
            pixels,
            threads: 0,
            out_base: Addr(0),
        }
    }

    fn exact(&self) -> Vec<i32> {
        let (w, h) = (self.width, self.height);
        (0..w * h)
            .map(|i| sobel_at(&self.pixels, w, h, i % w, i / w))
            .collect()
    }
}

impl Workload for Sobel {
    fn name(&self) -> &'static str {
        "sobel"
    }

    fn metric(&self) -> Metric {
        Metric::Nrmse
    }

    fn build(&mut self, m: &mut Machine, threads: usize, d: u8) {
        self.threads = threads;
        let (w, h) = (self.width, self.height);
        let img_base = m.alloc_padded((w * h) as u64);
        m.backdoor_write_u8s(img_base, &self.pixels);
        // Output gradients as packed i32: neighbouring threads' row
        // strips share boundary blocks.
        self.out_base = m.alloc_padded((w * h * 4) as u64);
        let out_base = self.out_base;

        // Interleaved row assignment (OpenMP static chunk 1): adjacent
        // rows belong to different threads, so every output block is
        // contended — the false-sharing-rich variant of the kernel.
        for t in 0..threads {
            let my_rows: Vec<usize> = (t..h).step_by(threads).collect();
            m.add_thread(move |ctx| async move {
                ctx.approx_begin(d).await;
                for y in my_rows {
                    // Load the three input rows once per row strip
                    // (register-blocked like the real kernel).
                    let mut rows = vec![0u8; 3 * w];
                    for ry in 0..3usize {
                        let sy = (y + ry).saturating_sub(1).min(h - 1);
                        for x in 0..w {
                            rows[ry * w + x] = ctx.load_u8(img_base.add((sy * w + x) as u64)).await;
                        }
                    }
                    for x in 0..w {
                        let g = if x == 0 || y == 0 || x + 1 >= w || y + 1 >= h {
                            0
                        } else {
                            let p = |dx: isize, ry: usize| -> i32 {
                                rows[ry * w + (x as isize + dx) as usize] as i32
                            };
                            let gx = -p(-1, 0) - 2 * p(-1, 1) - p(-1, 2)
                                + p(1, 0)
                                + 2 * p(1, 1)
                                + p(1, 2);
                            let gy = -p(-1, 0) - 2 * p(0, 0) - p(1, 0)
                                + p(-1, 2)
                                + 2 * p(0, 2)
                                + p(1, 2);
                            ((((gx * gx + gy * gy) as f64).sqrt() * GRAD_SCALE as f64) as i32)
                                .min(255 * GRAD_SCALE)
                        };
                        ctx.work(6).await;
                        ctx.scribble_i32(out_base.add(((y * w + x) * 4) as u64), g)
                            .await;
                    }
                }
                ctx.approx_end().await;
            });
        }
    }

    fn output(&self, run: &FinishedRun) -> Vec<f64> {
        (0..self.width * self.height)
            .map(|i| run.read_i32(self.out_base.add((i * 4) as u64)) as f64)
            .collect()
    }

    fn reference(&self) -> Vec<f64> {
        self.exact().into_iter().map(f64::from).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::execute;
    use ghostwriter_core::{MachineConfig, Protocol};

    #[test]
    fn kernel_zero_on_flat_image() {
        let img = vec![100u8; 8 * 8];
        for y in 0..8 {
            for x in 0..8 {
                assert_eq!(sobel_at(&img, 8, 8, x, y), 0);
            }
        }
    }

    #[test]
    fn kernel_detects_vertical_edge() {
        let mut img = vec![0u8; 8 * 8];
        for y in 0..8 {
            for x in 4..8 {
                img[y * 8 + x] = 255;
            }
        }
        // Strong response along the edge column, zero far from it.
        assert!(sobel_at(&img, 8, 8, 4, 4) > 200 * GRAD_SCALE);
        assert_eq!(sobel_at(&img, 8, 8, 1, 4), 0);
    }

    #[test]
    fn exact_under_mesi() {
        let mut w = Sobel::new(23, 24, 24);
        let out = execute(&mut w, MachineConfig::small(4, Protocol::Mesi), 4, 8);
        assert_eq!(out.error_percent, 0.0);
    }

    #[test]
    fn low_error_under_ghostwriter() {
        let mut w = Sobel::new(23, 24, 24);
        let out = execute(
            &mut w,
            MachineConfig::small(4, Protocol::ghostwriter()),
            4,
            8,
        );
        assert!(out.error_percent < 5.0, "NRMSE {}%", out.error_percent);
    }
}
