//! AxBench `blackscholes`: European option pricing.
//!
//! Each thread prices a contiguous chunk of options and writes the result
//! into a packed shared `f32` price array (the OpenMP parallel-for the
//! paper uses). Results are written once each, so false sharing appears
//! only at chunk boundaries — matching the paper's observation of
//! negligible coherence misses (0.3%) and hence negligible Ghostwriter
//! impact and error.

use ghostwriter_core::{Addr, FinishedRun, Machine};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::metrics::Metric;
use crate::runner::Workload;

/// One option's parameters.
#[derive(Clone, Copy, Debug)]
pub struct Option32 {
    /// Spot price.
    pub s: f32,
    /// Strike price.
    pub k: f32,
    /// Risk-free rate.
    pub r: f32,
    /// Volatility.
    pub v: f32,
    /// Time to maturity (years).
    pub t: f32,
    /// Call (true) or put.
    pub call: bool,
}

/// Abramowitz–Stegun style cumulative normal distribution, matching the
/// single-precision kernel AxBench uses. Deterministic and identical in
/// the simulated and reference paths.
pub fn cnd(x: f32) -> f32 {
    let l = x.abs();
    let k = 1.0 / (1.0 + 0.2316419 * l);
    let poly = k
        * (0.319_381_54
            + k * (-0.356_563_78 + k * (1.781_477_9 + k * (-1.821_255_9 + k * 1.330_274_5))));
    let w = 1.0 - 1.0 / (2.0 * std::f32::consts::PI).sqrt() * (-l * l / 2.0).exp() * poly;
    if x < 0.0 {
        1.0 - w
    } else {
        w
    }
}

/// Prices one option with Black-Scholes.
pub fn price(o: &Option32) -> f32 {
    let d1 = ((o.s / o.k).ln() + (o.r + o.v * o.v / 2.0) * o.t) / (o.v * o.t.sqrt());
    let d2 = d1 - o.v * o.t.sqrt();
    if o.call {
        o.s * cnd(d1) - o.k * (-o.r * o.t).exp() * cnd(d2)
    } else {
        o.k * (-o.r * o.t).exp() * cnd(-d2) - o.s * cnd(-d1)
    }
}

/// The `blackscholes` workload.
pub struct BlackScholes {
    options: Vec<Option32>,
    threads: usize,
    prices_base: Addr,
}

impl BlackScholes {
    /// `n` seeded options in AxBench-like parameter ranges.
    pub fn new(seed: u64, n: usize) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let options = (0..n)
            .map(|_| Option32 {
                s: rng.gen_range(10.0..200.0),
                k: rng.gen_range(10.0..200.0),
                r: rng.gen_range(0.005..0.1),
                v: rng.gen_range(0.05..0.9),
                t: rng.gen_range(0.05..3.0),
                call: rng.gen_bool(0.5),
            })
            .collect();
        Self {
            options,
            threads: 0,
            prices_base: Addr(0),
        }
    }
}

impl Workload for BlackScholes {
    fn name(&self) -> &'static str {
        "blackscholes"
    }

    fn metric(&self) -> Metric {
        Metric::Mpe
    }

    fn build(&mut self, m: &mut Machine, threads: usize, d: u8) {
        self.threads = threads;
        let n = self.options.len();
        // Input layout: 5 packed f32 arrays + a flag byte array.
        let s_base = m.alloc_padded((n * 4) as u64);
        let k_base = m.alloc_padded((n * 4) as u64);
        let r_base = m.alloc_padded((n * 4) as u64);
        let v_base = m.alloc_padded((n * 4) as u64);
        let t_base = m.alloc_padded((n * 4) as u64);
        let c_base = m.alloc_padded(n as u64);
        m.backdoor_write_f32s(
            s_base,
            &self.options.iter().map(|o| o.s).collect::<Vec<_>>(),
        );
        m.backdoor_write_f32s(
            k_base,
            &self.options.iter().map(|o| o.k).collect::<Vec<_>>(),
        );
        m.backdoor_write_f32s(
            r_base,
            &self.options.iter().map(|o| o.r).collect::<Vec<_>>(),
        );
        m.backdoor_write_f32s(
            v_base,
            &self.options.iter().map(|o| o.v).collect::<Vec<_>>(),
        );
        m.backdoor_write_f32s(
            t_base,
            &self.options.iter().map(|o| o.t).collect::<Vec<_>>(),
        );
        m.backdoor_write_u8s(
            c_base,
            &self
                .options
                .iter()
                .map(|o| o.call as u8)
                .collect::<Vec<_>>(),
        );
        self.prices_base = m.alloc_padded((n * 4) as u64);
        let prices_base = self.prices_base;

        let per = n.div_ceil(threads);
        for t in 0..threads {
            let lo = (t * per).min(n);
            let hi = ((t + 1) * per).min(n);
            m.add_thread(move |ctx| async move {
                ctx.approx_begin(d).await;
                for i in lo..hi {
                    let o = Option32 {
                        s: ctx.load_f32(s_base.add((i * 4) as u64)).await,
                        k: ctx.load_f32(k_base.add((i * 4) as u64)).await,
                        r: ctx.load_f32(r_base.add((i * 4) as u64)).await,
                        v: ctx.load_f32(v_base.add((i * 4) as u64)).await,
                        t: ctx.load_f32(t_base.add((i * 4) as u64)).await,
                        call: ctx.load_u8(c_base.add(i as u64)).await != 0,
                    };
                    ctx.work(40).await; // ln/exp/sqrt pipeline
                    ctx.scribble_f32(prices_base.add((i * 4) as u64), price(&o))
                        .await;
                }
                ctx.approx_end().await;
            });
        }
    }

    fn output(&self, run: &FinishedRun) -> Vec<f64> {
        run.read_f32s(self.prices_base, self.options.len())
            .into_iter()
            .map(f64::from)
            .collect()
    }

    fn reference(&self) -> Vec<f64> {
        self.options.iter().map(|o| price(o) as f64).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::execute;
    use ghostwriter_core::{MachineConfig, Protocol};

    #[test]
    fn cnd_is_a_cdf() {
        assert!((cnd(0.0) - 0.5).abs() < 1e-4);
        assert!(cnd(-4.0) < 0.001);
        assert!(cnd(4.0) > 0.999);
        for x in [-2.0f32, -0.5, 0.0, 0.7, 2.5] {
            assert!(cnd(x) >= 0.0 && cnd(x) <= 1.0);
            assert!((cnd(x) + cnd(-x) - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn call_put_parity_holds() {
        let mut call = Option32 {
            s: 100.0,
            k: 110.0,
            r: 0.05,
            v: 0.3,
            t: 1.0,
            call: true,
        };
        let c = price(&call);
        call.call = false;
        let p = price(&call);
        // C - P = S - K e^{-rT}
        let parity = call.s - call.k * (-call.r * call.t).exp();
        assert!((c - p - parity).abs() < 1e-3, "parity violated: {c} {p}");
    }

    #[test]
    fn exact_under_mesi() {
        let mut w = BlackScholes::new(9, 300);
        let out = execute(&mut w, MachineConfig::small(4, Protocol::Mesi), 4, 8);
        assert_eq!(out.error_percent, 0.0);
    }

    #[test]
    fn negligible_ghostwriter_impact() {
        let run = |protocol| {
            let mut w = BlackScholes::new(9, 300);
            execute(&mut w, MachineConfig::small(4, protocol), 4, 8)
        };
        let base = run(Protocol::Mesi);
        let gw = run(Protocol::ghostwriter());
        assert!(gw.error_percent < 1.0, "error {}%", gw.error_percent);
        let ratio = gw.report.cycles as f64 / base.report.cycles as f64;
        assert!(ratio < 1.05, "no slowdown allowed: {ratio}");
    }
}
