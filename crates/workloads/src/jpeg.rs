//! AxBench `jpeg`: DCT-based image compression pipeline.
//!
//! Three phases over 8×8 tiles of a grayscale image, separated by
//! barriers, with the tile→thread assignment *rotated* between phases:
//!
//! 1. **DCT** — thread `t` transforms its tiles into the shared integer
//!    coefficient array;
//! 2. **Quantize** — thread `t+1` quantizes *in place*: each coefficient
//!    is replaced by its dequantized value `(v/q)·q`, which differs from
//!    `v` by less than the quantisation step — textbook bit-wise value
//!    similarity. Because the quantizer of a tile is a different core
//!    than its DCT producer, the loads bring the blocks in Shared state
//!    and the scribbles transition them to `GS` (producer-consumer
//!    sharing, paper Fig. 5);
//! 3. **Reconstruct** — thread `t+2` inverse-transforms into the output
//!    image.
//!
//! Coefficients are stored *plane-major* (all tiles' DC terms
//! contiguous, then all first AC terms, ...), the layout transform coders
//! use for entropy-friendly scanning. A 64-byte block of a plane spans 16
//! tiles, so the chunk-adjacent threads contend on plane blocks:
//! migratory false sharing inside each phase, producer-consumer sharing
//! across the rotated phases — the mixture the paper reports for jpeg
//! (§4.2), exercising both `GS` and `GI`. The in-place quantisation
//! writes values within one quantisation step of what they overwrite, so
//! hidden/lost approximate updates perturb the output by less than the
//! quantiser already does.

use ghostwriter_core::{Addr, FinishedRun, Machine};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::metrics::Metric;
use crate::runner::Workload;

const TILE: usize = 8;

/// Standard JPEG luminance quantization table (quality ~50).
#[rustfmt::skip]
pub const QUANT: [i32; 64] = [
    16, 11, 10, 16, 24, 40, 51, 61,
    12, 12, 14, 19, 26, 58, 60, 55,
    14, 13, 16, 24, 40, 57, 69, 56,
    14, 17, 22, 29, 51, 87, 80, 62,
    18, 22, 37, 56, 68, 109, 103, 77,
    24, 35, 55, 64, 81, 104, 113, 92,
    49, 64, 78, 87, 103, 121, 120, 101,
    72, 92, 95, 98, 112, 100, 103, 99,
];

/// Rounds a coefficient to its quantisation grid: `round(v/q)·q`.
/// The result differs from `v` by at most `q/2` — the bit-wise value
/// similarity the in-place quantisation pass exploits.
pub fn quantize(v: i32, q: i32) -> i32 {
    let r = if v >= 0 {
        (v + q / 2) / q
    } else {
        -((-v + q / 2) / q)
    };
    r * q
}

/// 8×8 forward DCT-II with the orthonormal scaling JPEG uses.
pub fn dct8x8(pixels: &[f32; 64], out: &mut [f32; 64]) {
    for v in 0..TILE {
        for u in 0..TILE {
            let cu = if u == 0 {
                std::f32::consts::FRAC_1_SQRT_2
            } else {
                1.0
            };
            let cv = if v == 0 {
                std::f32::consts::FRAC_1_SQRT_2
            } else {
                1.0
            };
            let mut s = 0.0f32;
            for y in 0..TILE {
                for x in 0..TILE {
                    s += (pixels[y * TILE + x] - 128.0)
                        * (((2 * x + 1) as f32) * u as f32 * std::f32::consts::PI / 16.0).cos()
                        * (((2 * y + 1) as f32) * v as f32 * std::f32::consts::PI / 16.0).cos();
                }
            }
            out[v * TILE + u] = 0.25 * cu * cv * s;
        }
    }
}

/// 8×8 inverse DCT.
pub fn idct8x8(coeffs: &[f32; 64], out: &mut [f32; 64]) {
    for y in 0..TILE {
        for x in 0..TILE {
            let mut s = 0.0f32;
            for v in 0..TILE {
                for u in 0..TILE {
                    let cu = if u == 0 {
                        std::f32::consts::FRAC_1_SQRT_2
                    } else {
                        1.0
                    };
                    let cv = if v == 0 {
                        std::f32::consts::FRAC_1_SQRT_2
                    } else {
                        1.0
                    };
                    s += cu
                        * cv
                        * coeffs[v * TILE + u]
                        * (((2 * x + 1) as f32) * u as f32 * std::f32::consts::PI / 16.0).cos()
                        * (((2 * y + 1) as f32) * v as f32 * std::f32::consts::PI / 16.0).cos();
                }
            }
            out[y * TILE + x] = 0.25 * s + 128.0;
        }
    }
}

/// The `jpeg` workload over a `width × height` grayscale image
/// (multiples of 8).
pub struct Jpeg {
    width: usize,
    height: usize,
    pixels: Vec<u8>,
    threads: usize,
    out_base: Addr,
}

impl Jpeg {
    /// Synthetic photo-like image: smooth gradients plus texture.
    pub fn new(seed: u64, width: usize, height: usize) -> Self {
        assert!(width.is_multiple_of(TILE) && height.is_multiple_of(TILE));
        let mut rng = StdRng::seed_from_u64(seed);
        let pixels = (0..width * height)
            .map(|i| {
                let (x, y) = (i % width, i / width);
                let grad = (x * 255 / width + y * 127 / height) as i32 / 2 + 32;
                let texture: i32 = rng.gen_range(-12..=12);
                (grad + texture).clamp(0, 255) as u8
            })
            .collect();
        Self {
            width,
            height,
            pixels,
            threads: 0,
            out_base: Addr(0),
        }
    }

    fn tiles(&self) -> usize {
        (self.width / TILE) * (self.height / TILE)
    }

    /// Pixel indices (row-major in the image) of tile `k`.
    fn tile_pixels(&self, k: usize) -> impl Iterator<Item = usize> + '_ {
        let tiles_x = self.width / TILE;
        let (tx, ty) = (k % tiles_x, k / tiles_x);
        (0..TILE * TILE).map(move |i| {
            let (x, y) = (i % TILE, i / TILE);
            (ty * TILE + y) * self.width + (tx * TILE + x)
        })
    }

    /// Precise pipeline: DCT → in-place quantize/dequantize → IDCT.
    fn exact_pipeline(&self) -> Vec<i32> {
        let mut out = vec![0i32; self.width * self.height];
        for k in 0..self.tiles() {
            let mut tile = [0f32; 64];
            for (slot, pi) in self.tile_pixels(k).enumerate() {
                tile[slot] = self.pixels[pi] as f32;
            }
            let mut coeffs = [0f32; 64];
            dct8x8(&tile, &mut coeffs);
            // Integer coefficients, as stored in the shared array.
            let mut ic = [0i32; 64];
            for i in 0..64 {
                ic[i] = coeffs[i].round() as i32;
            }
            // In-place dequantized values.
            let mut deq = [0f32; 64];
            for i in 0..64 {
                let q = quantize(ic[i], QUANT[i]);
                deq[i] = q as f32;
            }
            let mut rec = [0f32; 64];
            idct8x8(&deq, &mut rec);
            for (slot, pi) in self.tile_pixels(k).enumerate() {
                out[pi] = rec[slot].round().clamp(0.0, 255.0) as i32;
            }
        }
        out
    }
}

impl Workload for Jpeg {
    fn name(&self) -> &'static str {
        "jpeg"
    }

    fn metric(&self) -> Metric {
        Metric::Nrmse
    }

    fn build(&mut self, m: &mut Machine, threads: usize, d: u8) {
        self.threads = threads;
        let tiles = self.tiles();
        let n_px = self.width * self.height;
        let img_base = m.alloc_padded(n_px as u64);
        m.backdoor_write_u8s(img_base, &self.pixels);
        // Shared intermediate: integer DCT coefficients, *plane-major*
        // ([plane i][tile k] at (i*tiles + k)); quantisation rewrites it
        // in place.
        let coeff_base = m.alloc_padded((tiles * 64 * 4) as u64);
        // Output image: bytes, written with conventional stores — the
        // programmer does not annotate it (a lost pixel write would not
        // be value-similar to anything, §3.1's legality guidance).
        self.out_base = m.alloc_padded(n_px as u64);
        let out_base = self.out_base;

        let width = self.width;
        let tiles_x = self.width / TILE;
        let chunk = tiles.div_ceil(threads);
        let range_of = move |t: usize| -> (usize, usize) {
            ((t * chunk).min(tiles), ((t + 1) * chunk).min(tiles))
        };

        for t in 0..threads {
            // Chunked tile ranges, rotated between phases: the quantizer
            // and reconstructor of a tile run on different cores than its
            // producer (Fig. 5's migrating producer).
            let (lo, hi) = range_of(t);
            let (qlo, qhi) = range_of((t + 1) % threads);
            let (rlo, rhi) = range_of((t + 2) % threads);
            m.add_thread(move |ctx| async move {
                let tile_px = |k: usize, i: usize| -> u64 {
                    let (tx, ty) = (k % tiles_x, k / tiles_x);
                    let (x, y) = (i % TILE, i / TILE);
                    ((ty * TILE + y) * width + (tx * TILE + x)) as u64
                };
                let plane_addr = move |i: usize, k: usize| -> u64 { ((i * tiles + k) * 4) as u64 };
                // Phase 1: DCT; scatter coefficients into the planes.
                // Conventional stores: fresh coefficients are not
                // value-similar to the zero-initialised planes, so the
                // programmer leaves this phase un-annotated (§3.1).
                let mut coeffs_of = vec![[0f32; 64]; hi - lo];
                for k in lo..hi {
                    let mut tile = [0f32; 64];
                    for (slot, item) in tile.iter_mut().enumerate() {
                        *item = ctx.load_u8(img_base.add(tile_px(k, slot))).await as f32;
                    }
                    dct8x8(&tile, &mut coeffs_of[k - lo]);
                    ctx.work(256).await;
                }
                // Plane-major scatter: revisits each contended plane
                // block once per own tile.
                #[allow(clippy::needless_range_loop)] // i indexes two arrays
                for i in 0..64 {
                    for k in lo..hi {
                        ctx.store_i32(
                            coeff_base.add(plane_addr(i, k)),
                            coeffs_of[k - lo][i].round() as i32,
                        )
                        .await;
                    }
                }
                ctx.barrier().await;
                // Phase 2 (the annotated approximate region): in-place
                // quantize/dequantize, plane-major, on the rotated chunk.
                // Gather-then-scatter: the gather loads warm the tags;
                // by the time the scatter writes back, contending
                // neighbours may have invalidated the blocks, and the
                // scribbles — each within one quantisation step of the
                // stale value — hit GS on still-shared blocks and GI on
                // invalidated ones (paper Fig. 5).
                ctx.approx_begin(d).await;
                let mut vals = vec![0i32; qhi - qlo];
                #[allow(clippy::needless_range_loop)] // i indexes QUANT too
                for i in 0..64 {
                    for k in qlo..qhi {
                        vals[k - qlo] = ctx.load_i32(coeff_base.add(plane_addr(i, k))).await;
                    }
                    ctx.work(2 * (qhi - qlo) as u64).await;
                    for k in qlo..qhi {
                        ctx.scribble_i32(
                            coeff_base.add(plane_addr(i, k)),
                            quantize(vals[k - qlo], QUANT[i]),
                        )
                        .await;
                    }
                }
                ctx.approx_end().await;
                ctx.barrier().await;
                // Phase 3: gather + IDCT into the output image
                // (conventional stores).
                for k in rlo..rhi {
                    let mut deq = [0f32; 64];
                    for (i, item) in deq.iter_mut().enumerate() {
                        let q = ctx.load_i32(coeff_base.add(plane_addr(i, k))).await;
                        *item = q as f32;
                    }
                    let mut rec = [0f32; 64];
                    idct8x8(&deq, &mut rec);
                    ctx.work(256).await;
                    for (i, &p) in rec.iter().enumerate() {
                        let px = p.round().clamp(0.0, 255.0) as u8;
                        ctx.store_u8(out_base.add(tile_px(k, i)), px).await;
                    }
                }
            });
        }
    }

    fn output(&self, run: &FinishedRun) -> Vec<f64> {
        let mut bytes = vec![0u8; self.width * self.height];
        run.read(self.out_base, &mut bytes);
        bytes.into_iter().map(f64::from).collect()
    }

    fn reference(&self) -> Vec<f64> {
        self.exact_pipeline().iter().map(|&p| p as f64).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::execute;
    use ghostwriter_core::{MachineConfig, Protocol};

    #[test]
    fn dct_idct_round_trip() {
        let mut pixels = [0f32; 64];
        for (i, p) in pixels.iter_mut().enumerate() {
            *p = ((i * 7) % 256) as f32;
        }
        let mut coeffs = [0f32; 64];
        let mut back = [0f32; 64];
        dct8x8(&pixels, &mut coeffs);
        idct8x8(&coeffs, &mut back);
        for i in 0..64 {
            assert!((pixels[i] - back[i]).abs() < 0.01, "i={i}");
        }
    }

    #[test]
    fn dct_dc_coefficient_is_mean() {
        let pixels = [200f32; 64];
        let mut coeffs = [0f32; 64];
        dct8x8(&pixels, &mut coeffs);
        // DC = 8 * (mean - 128) = 8 * 72 = 576.
        assert!((coeffs[0] - 576.0).abs() < 0.01);
        assert!(coeffs[1..].iter().all(|c| c.abs() < 0.01));
    }

    #[test]
    fn exact_under_mesi() {
        let mut w = Jpeg::new(17, 16, 16);
        let out = execute(&mut w, MachineConfig::small(4, Protocol::Mesi), 4, 8);
        assert_eq!(out.error_percent, 0.0);
    }

    #[test]
    fn quantization_error_is_modest_in_reference() {
        let w = Jpeg::new(17, 16, 16);
        let rec = w.exact_pipeline();
        // Quantized reconstruction stays near the original image.
        let mut max_err = 0;
        for (i, &p) in w.pixels.iter().enumerate() {
            max_err = max_err.max((rec[i] - p as i32).abs());
        }
        assert!(max_err < 60, "quantization destroyed the image: {max_err}");
    }

    #[test]
    fn ghostwriter_uses_both_states_with_low_error() {
        let mut w = Jpeg::new(17, 16, 16);
        let out = execute(
            &mut w,
            MachineConfig::small(4, Protocol::ghostwriter()),
            4,
            8,
        );
        let s = &out.report.stats;
        assert!(
            s.serviced_by_gs + s.serviced_by_gi > 0,
            "jpeg should exercise the approximate states"
        );
        assert!(out.error_percent < 10.0, "NRMSE {}%", out.error_percent);
    }
}
