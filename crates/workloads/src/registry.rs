//! The benchmark roster (paper Table 2) and factory functions.
//!
//! Each entry describes one application and can build identically-seeded
//! instances at a chosen scale, so the evaluation harness can run the same
//! inputs under both protocols.

use crate::blackscholes::BlackScholes;
use crate::dot::{BadDotProduct, GoodDotProduct};
use crate::histogram::Histogram;
use crate::inversek2j::InverseK2J;
use crate::jpeg::Jpeg;
use crate::kmeans::KMeans;
use crate::linreg::LinearRegression;
use crate::metrics::Metric;
use crate::pca::Pca;
use crate::runner::Workload;
use crate::sobel::Sobel;

/// Which suite an application comes from.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Suite {
    /// Phoenix map-reduce benchmarks (pthreads in the paper).
    Phoenix,
    /// AxBench approximate-computing benchmarks (OpenMP in the paper).
    AxBench,
    /// The paper's §2 / Fig. 12 microbenchmarks.
    Micro,
}

impl Suite {
    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            Suite::Phoenix => "Phoenix",
            Suite::AxBench => "AxBench",
            Suite::Micro => "Microbenchmark",
        }
    }
}

/// How large an instance to build.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ScaleClass {
    /// Small inputs for unit/integration tests (seconds).
    Test,
    /// The evaluation scale used by the figure harness (DESIGN.md §7.3
    /// documents the reduction from the paper's input sizes).
    Eval,
}

/// One Table 2 row.
pub struct BenchmarkEntry {
    /// Application name as in the paper.
    pub name: &'static str,
    /// Application domain (Table 2).
    pub domain: &'static str,
    /// Source suite.
    pub suite: Suite,
    /// Input description at evaluation scale.
    pub input_desc: &'static str,
    /// Error metric.
    pub metric: Metric,
    factory: fn(ScaleClass) -> Box<dyn Workload>,
}

impl BenchmarkEntry {
    /// Builds a fresh, deterministically-seeded instance.
    pub fn build(&self, scale: ScaleClass) -> Box<dyn Workload> {
        (self.factory)(scale)
    }
}

const SEED: u64 = 0xC0FFEE;

/// The six paper applications (Table 2).
pub fn paper_benchmarks() -> Vec<BenchmarkEntry> {
    vec![
        BenchmarkEntry {
            name: "histogram",
            domain: "Image Processing",
            suite: Suite::Phoenix,
            input_desc: "synthetic RGB image",
            metric: Metric::Mpe,
            factory: |s| {
                Box::new(Histogram::new(
                    SEED,
                    match s {
                        ScaleClass::Test => 600,
                        ScaleClass::Eval => 6_000,
                    },
                ))
            },
        },
        BenchmarkEntry {
            name: "linear_regression",
            domain: "Machine Learning",
            suite: Suite::Phoenix,
            input_desc: "synthetic point file",
            metric: Metric::Mpe,
            factory: |s| {
                Box::new(LinearRegression::new(
                    SEED,
                    match s {
                        ScaleClass::Test => 400,
                        ScaleClass::Eval => 6_000,
                    },
                ))
            },
        },
        BenchmarkEntry {
            name: "pca",
            domain: "Machine Learning",
            suite: Suite::Phoenix,
            input_desc: "synthetic matrix",
            metric: Metric::Nrmse,
            factory: |s| match s {
                ScaleClass::Test => Box::new(Pca::new(SEED, 16, 24)),
                ScaleClass::Eval => Box::new(Pca::new(SEED, 40, 48)),
            },
        },
        BenchmarkEntry {
            name: "blackscholes",
            domain: "Financial Analysis",
            suite: Suite::AxBench,
            input_desc: "synthetic options",
            metric: Metric::Mpe,
            factory: |s| {
                Box::new(BlackScholes::new(
                    SEED,
                    match s {
                        ScaleClass::Test => 300,
                        ScaleClass::Eval => 4_000,
                    },
                ))
            },
        },
        BenchmarkEntry {
            name: "inversek2j",
            domain: "Robotics",
            suite: Suite::AxBench,
            input_desc: "synthetic reachable points",
            metric: Metric::Nrmse,
            factory: |s| {
                Box::new(InverseK2J::new(
                    SEED,
                    match s {
                        ScaleClass::Test => 300,
                        ScaleClass::Eval => 4_000,
                    },
                ))
            },
        },
        BenchmarkEntry {
            name: "jpeg",
            domain: "Image Compression",
            suite: Suite::AxBench,
            input_desc: "synthetic grayscale image",
            metric: Metric::Nrmse,
            factory: |s| match s {
                ScaleClass::Test => Box::new(Jpeg::new(SEED, 16, 16)),
                ScaleClass::Eval => Box::new(Jpeg::new(SEED, 64, 64)),
            },
        },
    ]
}

/// Extension workloads from the same suites, beyond the paper's
/// Table 2 (used by the `extended_eval` binary).
pub fn extended_benchmarks() -> Vec<BenchmarkEntry> {
    vec![
        BenchmarkEntry {
            name: "kmeans",
            domain: "Machine Learning",
            suite: Suite::Phoenix,
            input_desc: "clustered 2-D integer points",
            metric: Metric::Nrmse,
            factory: |s| match s {
                ScaleClass::Test => Box::new(KMeans::new(SEED, 120, 4, 3)),
                ScaleClass::Eval => Box::new(KMeans::new(SEED, 600, 8, 5)),
            },
        },
        BenchmarkEntry {
            name: "sobel",
            domain: "Image Processing",
            suite: Suite::AxBench,
            input_desc: "synthetic grayscale image",
            metric: Metric::Nrmse,
            factory: |s| match s {
                ScaleClass::Test => Box::new(Sobel::new(SEED, 24, 24)),
                ScaleClass::Eval => Box::new(Sobel::new(SEED, 64, 64)),
            },
        },
    ]
}

/// The §2 microbenchmarks (Fig. 1, Fig. 12).
pub fn micro_benchmarks() -> Vec<BenchmarkEntry> {
    vec![
        BenchmarkEntry {
            name: "bad_dot_product",
            domain: "Microbenchmark",
            suite: Suite::Micro,
            input_desc: "sparse integer vectors (0..=255)",
            metric: Metric::Mpe,
            factory: |s| {
                Box::new(BadDotProduct::new(
                    SEED,
                    match s {
                        ScaleClass::Test => 512,
                        ScaleClass::Eval => 8_000,
                    },
                    true,
                ))
            },
        },
        BenchmarkEntry {
            name: "good_dot_product",
            domain: "Microbenchmark",
            suite: Suite::Micro,
            input_desc: "sparse integer vectors (0..=255)",
            metric: Metric::Mpe,
            factory: |s| {
                Box::new(GoodDotProduct::new(
                    SEED,
                    match s {
                        ScaleClass::Test => 512,
                        ScaleClass::Eval => 8_000,
                    },
                ))
            },
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roster_matches_table2() {
        let b = paper_benchmarks();
        let names: Vec<_> = b.iter().map(|e| e.name).collect();
        assert_eq!(
            names,
            vec![
                "histogram",
                "linear_regression",
                "pca",
                "blackscholes",
                "inversek2j",
                "jpeg"
            ]
        );
        // Metrics as in Table 2.
        assert_eq!(b[0].metric, Metric::Mpe);
        assert_eq!(b[2].metric, Metric::Nrmse);
        assert_eq!(b[5].metric, Metric::Nrmse);
        assert_eq!(b[0].suite, Suite::Phoenix);
        assert_eq!(b[3].suite, Suite::AxBench);
    }

    #[test]
    fn factories_build_named_workloads() {
        for entry in paper_benchmarks()
            .iter()
            .chain(micro_benchmarks().iter())
            .chain(extended_benchmarks().iter())
        {
            let w = entry.build(ScaleClass::Test);
            assert_eq!(w.name(), entry.name);
            assert_eq!(w.metric(), entry.metric);
        }
    }
}
