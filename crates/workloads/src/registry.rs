//! The benchmark roster (paper Table 2) and factory functions.
//!
//! Each entry describes one application and can build identically-seeded
//! instances at a chosen scale, so the evaluation harness can run the same
//! inputs under both protocols.

use crate::blackscholes::BlackScholes;
use crate::dot::{BadDotProduct, GoodDotProduct};
use crate::histogram::Histogram;
use crate::inversek2j::InverseK2J;
use crate::jpeg::Jpeg;
use crate::kmeans::KMeans;
use crate::linreg::LinearRegression;
use crate::metrics::Metric;
use crate::pca::Pca;
use crate::runner::Workload;
use crate::sobel::Sobel;

/// Which suite an application comes from.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Suite {
    /// Phoenix map-reduce benchmarks (pthreads in the paper).
    Phoenix,
    /// AxBench approximate-computing benchmarks (OpenMP in the paper).
    AxBench,
    /// The paper's §2 / Fig. 12 microbenchmarks.
    Micro,
}

impl Suite {
    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            Suite::Phoenix => "Phoenix",
            Suite::AxBench => "AxBench",
            Suite::Micro => "Microbenchmark",
        }
    }
}

/// How large an instance to build.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ScaleClass {
    /// Small inputs for unit/integration tests (seconds).
    Test,
    /// The evaluation scale used by the figure harness (DESIGN.md §7.3
    /// documents the reduction from the paper's input sizes).
    Eval,
}

/// One Table 2 row.
pub struct BenchmarkEntry {
    /// Application name as in the paper.
    pub name: &'static str,
    /// Application domain (Table 2).
    pub domain: &'static str,
    /// Source suite.
    pub suite: Suite,
    /// Input description at evaluation scale.
    pub input_desc: &'static str,
    /// Error metric.
    pub metric: Metric,
    factory: fn(ScaleClass, u64) -> Box<dyn Workload>,
}

impl BenchmarkEntry {
    /// Builds a fresh instance with the default evaluation seed.
    pub fn build(&self, scale: ScaleClass) -> Box<dyn Workload> {
        self.build_seeded(scale, DEFAULT_SEED)
    }

    /// Builds a fresh instance with an explicit input seed.
    ///
    /// Every workload constructor requires a seed (none may reach for an
    /// ambient entropy source), so threading the experiment spec's seed
    /// through here is the *only* way inputs are generated — identical
    /// seeds give bit-identical inputs, and the experiment engine's
    /// cache fingerprints include this seed.
    pub fn build_seeded(&self, scale: ScaleClass, seed: u64) -> Box<dyn Workload> {
        (self.factory)(scale, seed)
    }
}

/// The evaluation-default input seed (EXPERIMENTS.md provenance).
pub const DEFAULT_SEED: u64 = 0xC0FFEE;

/// Looks a benchmark up by name across all three rosters.
pub fn find_benchmark(name: &str) -> Option<BenchmarkEntry> {
    paper_benchmarks()
        .into_iter()
        .chain(extended_benchmarks())
        .chain(micro_benchmarks())
        .find(|e| e.name == name)
}

/// The six paper applications (Table 2).
pub fn paper_benchmarks() -> Vec<BenchmarkEntry> {
    vec![
        BenchmarkEntry {
            name: "histogram",
            domain: "Image Processing",
            suite: Suite::Phoenix,
            input_desc: "synthetic RGB image",
            metric: Metric::Mpe,
            factory: |s, seed| {
                Box::new(Histogram::new(
                    seed,
                    match s {
                        ScaleClass::Test => 600,
                        ScaleClass::Eval => 6_000,
                    },
                ))
            },
        },
        BenchmarkEntry {
            name: "linear_regression",
            domain: "Machine Learning",
            suite: Suite::Phoenix,
            input_desc: "synthetic point file",
            metric: Metric::Mpe,
            factory: |s, seed| {
                Box::new(LinearRegression::new(
                    seed,
                    match s {
                        ScaleClass::Test => 400,
                        ScaleClass::Eval => 6_000,
                    },
                ))
            },
        },
        BenchmarkEntry {
            name: "pca",
            domain: "Machine Learning",
            suite: Suite::Phoenix,
            input_desc: "synthetic matrix",
            metric: Metric::Nrmse,
            factory: |s, seed| match s {
                ScaleClass::Test => Box::new(Pca::new(seed, 16, 24)),
                ScaleClass::Eval => Box::new(Pca::new(seed, 40, 48)),
            },
        },
        BenchmarkEntry {
            name: "blackscholes",
            domain: "Financial Analysis",
            suite: Suite::AxBench,
            input_desc: "synthetic options",
            metric: Metric::Mpe,
            factory: |s, seed| {
                Box::new(BlackScholes::new(
                    seed,
                    match s {
                        ScaleClass::Test => 300,
                        ScaleClass::Eval => 4_000,
                    },
                ))
            },
        },
        BenchmarkEntry {
            name: "inversek2j",
            domain: "Robotics",
            suite: Suite::AxBench,
            input_desc: "synthetic reachable points",
            metric: Metric::Nrmse,
            factory: |s, seed| {
                Box::new(InverseK2J::new(
                    seed,
                    match s {
                        ScaleClass::Test => 300,
                        ScaleClass::Eval => 4_000,
                    },
                ))
            },
        },
        BenchmarkEntry {
            name: "jpeg",
            domain: "Image Compression",
            suite: Suite::AxBench,
            input_desc: "synthetic grayscale image",
            metric: Metric::Nrmse,
            factory: |s, seed| match s {
                ScaleClass::Test => Box::new(Jpeg::new(seed, 16, 16)),
                ScaleClass::Eval => Box::new(Jpeg::new(seed, 64, 64)),
            },
        },
    ]
}

/// Extension workloads from the same suites, beyond the paper's
/// Table 2 (used by the `extended_eval` binary).
pub fn extended_benchmarks() -> Vec<BenchmarkEntry> {
    vec![
        BenchmarkEntry {
            name: "kmeans",
            domain: "Machine Learning",
            suite: Suite::Phoenix,
            input_desc: "clustered 2-D integer points",
            metric: Metric::Nrmse,
            factory: |s, seed| match s {
                ScaleClass::Test => Box::new(KMeans::new(seed, 120, 4, 3)),
                ScaleClass::Eval => Box::new(KMeans::new(seed, 600, 8, 5)),
            },
        },
        BenchmarkEntry {
            name: "sobel",
            domain: "Image Processing",
            suite: Suite::AxBench,
            input_desc: "synthetic grayscale image",
            metric: Metric::Nrmse,
            factory: |s, seed| match s {
                ScaleClass::Test => Box::new(Sobel::new(seed, 24, 24)),
                ScaleClass::Eval => Box::new(Sobel::new(seed, 64, 64)),
            },
        },
    ]
}

/// The §2 microbenchmarks (Fig. 1, Fig. 12).
pub fn micro_benchmarks() -> Vec<BenchmarkEntry> {
    vec![
        BenchmarkEntry {
            name: "bad_dot_product",
            domain: "Microbenchmark",
            suite: Suite::Micro,
            input_desc: "sparse integer vectors (0..=255)",
            metric: Metric::Mpe,
            factory: |s, seed| {
                Box::new(BadDotProduct::new(
                    seed,
                    match s {
                        ScaleClass::Test => 512,
                        ScaleClass::Eval => 8_000,
                    },
                    true,
                ))
            },
        },
        BenchmarkEntry {
            name: "good_dot_product",
            domain: "Microbenchmark",
            suite: Suite::Micro,
            input_desc: "sparse integer vectors (0..=255)",
            metric: Metric::Mpe,
            factory: |s, seed| {
                Box::new(GoodDotProduct::new(
                    seed,
                    match s {
                        ScaleClass::Test => 512,
                        ScaleClass::Eval => 8_000,
                    },
                ))
            },
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roster_matches_table2() {
        let b = paper_benchmarks();
        let names: Vec<_> = b.iter().map(|e| e.name).collect();
        assert_eq!(
            names,
            vec![
                "histogram",
                "linear_regression",
                "pca",
                "blackscholes",
                "inversek2j",
                "jpeg"
            ]
        );
        // Metrics as in Table 2.
        assert_eq!(b[0].metric, Metric::Mpe);
        assert_eq!(b[2].metric, Metric::Nrmse);
        assert_eq!(b[5].metric, Metric::Nrmse);
        assert_eq!(b[0].suite, Suite::Phoenix);
        assert_eq!(b[3].suite, Suite::AxBench);
    }

    #[test]
    fn factories_build_named_workloads() {
        for entry in paper_benchmarks()
            .iter()
            .chain(micro_benchmarks().iter())
            .chain(extended_benchmarks().iter())
        {
            let w = entry.build(ScaleClass::Test);
            assert_eq!(w.name(), entry.name);
            assert_eq!(w.metric(), entry.metric);
        }
    }

    #[test]
    fn find_benchmark_spans_all_rosters() {
        for name in ["histogram", "kmeans", "bad_dot_product"] {
            assert_eq!(find_benchmark(name).expect(name).name, name);
        }
        assert!(find_benchmark("nonesuch").is_none());
    }

    #[test]
    fn explicit_seed_reaches_every_workload() {
        // Same seed ⇒ bit-identical inputs (compared via the precise
        // reference output); different seed ⇒ different inputs. This is
        // the audit for the "no workload constructs its own unseeded
        // generator" rule: inputs must be a pure function of the seed.
        for entry in paper_benchmarks()
            .iter()
            .chain(micro_benchmarks().iter())
            .chain(extended_benchmarks().iter())
        {
            let a = entry.build_seeded(ScaleClass::Test, 7).reference();
            let b = entry.build_seeded(ScaleClass::Test, 7).reference();
            let c = entry.build_seeded(ScaleClass::Test, 8).reference();
            assert_eq!(a, b, "{}: same seed must give identical inputs", entry.name);
            assert_ne!(a, c, "{}: seed must actually vary the inputs", entry.name);
        }
    }
}
