//! Output-quality metrics (paper Table 2, after Akturk et al., ref. 4).
//!
//! Each application reports either **MPE** (maximum percent error) or
//! **NRMSE** (normalized root-mean-squared error) of its output against a
//! precise execution of the same algorithm.

/// Which metric an application reports.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Metric {
    /// Maximum percent error.
    Mpe,
    /// Normalized root-mean-squared error (normalized by the reference's
    /// value range), in percent.
    Nrmse,
}

impl Metric {
    /// Short label as printed in the paper's Table 2.
    pub fn label(self) -> &'static str {
        match self {
            Metric::Mpe => "MPE",
            Metric::Nrmse => "NRMSE",
        }
    }

    /// Evaluates the metric, in percent.
    pub fn evaluate(self, reference: &[f64], actual: &[f64]) -> f64 {
        match self {
            Metric::Mpe => mpe(reference, actual),
            Metric::Nrmse => nrmse(reference, actual),
        }
    }
}

/// Maximum percent error: `max_i |a_i - r_i| / denom_i × 100`.
///
/// For near-zero reference elements the denominator falls back to the mean
/// reference magnitude, so a tiny absolute wobble on a zero element cannot
/// report an unbounded percentage.
///
/// ```
/// use ghostwriter_workloads::mpe;
/// assert_eq!(mpe(&[100.0, 200.0], &[101.0, 210.0]), 5.0);
/// ```
pub fn mpe(reference: &[f64], actual: &[f64]) -> f64 {
    assert_eq!(reference.len(), actual.len(), "output length mismatch");
    if reference.is_empty() {
        return 0.0;
    }
    let mean_abs = reference.iter().map(|r| r.abs()).sum::<f64>() / reference.len() as f64;
    let floor = if mean_abs > 0.0 { mean_abs } else { 1.0 };
    reference
        .iter()
        .zip(actual)
        .map(|(&r, &a)| {
            let denom = r.abs().max(floor);
            ((a - r).abs() / denom) * 100.0
        })
        .fold(0.0, f64::max)
}

/// Normalized RMSE in percent: `RMSE / (max(r) - min(r)) × 100`, falling
/// back to the mean magnitude when the reference is constant.
///
/// ```
/// use ghostwriter_workloads::nrmse;
/// let r = [0.0, 10.0];
/// assert!((nrmse(&r, &r) - 0.0).abs() < 1e-12);
/// assert!(nrmse(&r, &[1.0, 10.0]) > 7.0);
/// ```
pub fn nrmse(reference: &[f64], actual: &[f64]) -> f64 {
    assert_eq!(reference.len(), actual.len(), "output length mismatch");
    if reference.is_empty() {
        return 0.0;
    }
    let mse = reference
        .iter()
        .zip(actual)
        .map(|(&r, &a)| (a - r) * (a - r))
        .sum::<f64>()
        / reference.len() as f64;
    let rmse = mse.sqrt();
    let (min, max) = reference
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &r| {
            (lo.min(r), hi.max(r))
        });
    let range = max - min;
    let denom = if range > 0.0 {
        range
    } else {
        let mean_abs = reference.iter().map(|r| r.abs()).sum::<f64>() / reference.len() as f64;
        if mean_abs > 0.0 {
            mean_abs
        } else {
            1.0
        }
    };
    (rmse / denom) * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_outputs_have_zero_error() {
        let r = vec![1.0, -2.0, 3.5, 0.0];
        assert_eq!(mpe(&r, &r), 0.0);
        assert_eq!(nrmse(&r, &r), 0.0);
    }

    #[test]
    fn mpe_is_max_relative_error() {
        let r = vec![100.0, 200.0];
        let a = vec![101.0, 210.0]; // 1% and 5%
        assert!((mpe(&r, &a) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn mpe_handles_zero_reference_elements() {
        let r = vec![0.0, 100.0];
        let a = vec![1.0, 100.0];
        // Denominator for the zero element is the mean magnitude (50).
        assert!((mpe(&r, &a) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn nrmse_normalizes_by_range() {
        let r = vec![0.0, 10.0];
        let a = vec![1.0, 10.0];
        // RMSE = sqrt(0.5) ≈ 0.7071, range = 10 → ≈ 7.071%.
        assert!((nrmse(&r, &a) - 7.0710678).abs() < 1e-5);
    }

    #[test]
    fn nrmse_constant_reference_falls_back_to_magnitude() {
        let r = vec![5.0, 5.0];
        let a = vec![5.0, 6.0];
        // RMSE = sqrt(0.5), denom = 5.
        assert!((nrmse(&r, &a) - 100.0 * 0.5f64.sqrt() / 5.0).abs() < 1e-9);
    }

    #[test]
    fn metric_dispatch() {
        let r = vec![10.0];
        let a = vec![11.0];
        assert!((Metric::Mpe.evaluate(&r, &a) - 10.0).abs() < 1e-9);
        assert_eq!(Metric::Mpe.label(), "MPE");
        assert_eq!(Metric::Nrmse.label(), "NRMSE");
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        mpe(&[1.0], &[1.0, 2.0]);
    }
}
