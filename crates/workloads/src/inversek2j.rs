//! AxBench `inversek2j`: inverse kinematics for a 2-joint robotic arm.
//!
//! For each target point `(x, y)` the kernel computes the two joint angles
//! `(θ1, θ2)` placing the end effector there. Threads process point chunks
//! and write into two packed shared angle arrays; writes are adjacent
//! across chunk boundaries, giving light boundary false sharing. Angle
//! values for nearby targets are close, so a fair share of the boundary
//! rewrites pass the scribe check.

use ghostwriter_core::{Addr, FinishedRun, Machine};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::metrics::Metric;
use crate::runner::Workload;

/// Arm segment lengths (AxBench uses 0.5/0.5).
const L1: f32 = 0.5;
const L2: f32 = 0.5;

/// Forward kinematics: joint angles to end-effector position.
pub fn forward(th1: f32, th2: f32) -> (f32, f32) {
    (
        L1 * th1.cos() + L2 * (th1 + th2).cos(),
        L1 * th1.sin() + L2 * (th1 + th2).sin(),
    )
}

/// Inverse kinematics for the 2-joint arm (elbow-down solution).
pub fn inverse(x: f32, y: f32) -> (f32, f32) {
    let d2 = x * x + y * y;
    let c2 = ((d2 - L1 * L1 - L2 * L2) / (2.0 * L1 * L2)).clamp(-1.0, 1.0);
    let th2 = c2.acos();
    let k1 = L1 + L2 * th2.cos();
    let k2 = L2 * th2.sin();
    let th1 = y.atan2(x) - k2.atan2(k1);
    (th1, th2)
}

/// The `inversek2j` workload.
pub struct InverseK2J {
    targets: Vec<(f32, f32)>,
    threads: usize,
    th1_base: Addr,
    th2_base: Addr,
}

impl InverseK2J {
    /// `n` reachable targets, generated from seeded joint angles (so every
    /// point is within the arm's annulus, as AxBench does).
    pub fn new(seed: u64, n: usize) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let targets = (0..n)
            .map(|_| {
                let th1: f32 = rng.gen_range(0.1..1.4);
                let th2: f32 = rng.gen_range(0.1..1.4);
                forward(th1, th2)
            })
            .collect();
        Self {
            targets,
            threads: 0,
            th1_base: Addr(0),
            th2_base: Addr(0),
        }
    }
}

impl Workload for InverseK2J {
    fn name(&self) -> &'static str {
        "inversek2j"
    }

    fn metric(&self) -> Metric {
        Metric::Nrmse
    }

    fn build(&mut self, m: &mut Machine, threads: usize, d: u8) {
        self.threads = threads;
        let n = self.targets.len();
        let x_base = m.alloc_padded((n * 4) as u64);
        let y_base = m.alloc_padded((n * 4) as u64);
        m.backdoor_write_f32s(
            x_base,
            &self.targets.iter().map(|t| t.0).collect::<Vec<_>>(),
        );
        m.backdoor_write_f32s(
            y_base,
            &self.targets.iter().map(|t| t.1).collect::<Vec<_>>(),
        );
        self.th1_base = m.alloc_padded((n * 4) as u64);
        self.th2_base = m.alloc_padded((n * 4) as u64);
        let (th1_base, th2_base) = (self.th1_base, self.th2_base);

        for t in 0..threads {
            // Strided partition: adjacent points go to different threads,
            // so the packed angle arrays see sustained false sharing (the
            // AxBench kernel parallelised with a static OpenMP schedule of
            // chunk 1).
            let my: Vec<usize> = (t..n).step_by(threads).collect();
            m.add_thread(move |ctx| async move {
                ctx.approx_begin(d).await;
                for i in my {
                    let x = ctx.load_f32(x_base.add((i * 4) as u64)).await;
                    let y = ctx.load_f32(y_base.add((i * 4) as u64)).await;
                    ctx.work(30).await; // acos/atan2 pipeline
                    let (th1, th2) = inverse(x, y);
                    ctx.scribble_f32(th1_base.add((i * 4) as u64), th1).await;
                    ctx.scribble_f32(th2_base.add((i * 4) as u64), th2).await;
                }
                ctx.approx_end().await;
            });
        }
    }

    fn output(&self, run: &FinishedRun) -> Vec<f64> {
        let n = self.targets.len();
        let mut out: Vec<f64> = run
            .read_f32s(self.th1_base, n)
            .into_iter()
            .map(f64::from)
            .collect();
        out.extend(run.read_f32s(self.th2_base, n).into_iter().map(f64::from));
        out
    }

    fn reference(&self) -> Vec<f64> {
        let mut out: Vec<f64> = self
            .targets
            .iter()
            .map(|&(x, y)| inverse(x, y).0 as f64)
            .collect();
        out.extend(self.targets.iter().map(|&(x, y)| inverse(x, y).1 as f64));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::execute;
    use ghostwriter_core::{MachineConfig, Protocol};

    #[test]
    fn inverse_inverts_forward() {
        for (th1, th2) in [(0.3f32, 0.8f32), (1.0, 0.2), (0.5, 1.3)] {
            let (x, y) = forward(th1, th2);
            let (r1, r2) = inverse(x, y);
            let (xx, yy) = forward(r1, r2);
            assert!((x - xx).abs() < 1e-4 && (y - yy).abs() < 1e-4);
        }
    }

    #[test]
    fn exact_under_mesi() {
        let mut w = InverseK2J::new(13, 300);
        let out = execute(&mut w, MachineConfig::small(4, Protocol::Mesi), 4, 8);
        assert_eq!(out.error_percent, 0.0);
    }

    #[test]
    fn strided_writes_cause_sharing_misses() {
        let mut w = InverseK2J::new(13, 300);
        let out = execute(&mut w, MachineConfig::small(4, Protocol::Mesi), 4, 8);
        assert!(
            out.report.stats.l1_store_misses > 50,
            "strided angle writes should contend: {}",
            out.report.stats.l1_store_misses
        );
    }

    #[test]
    fn low_error_under_ghostwriter() {
        let mut w = InverseK2J::new(13, 300);
        let out = execute(
            &mut w,
            MachineConfig::small(4, Protocol::ghostwriter()),
            4,
            8,
        );
        assert!(out.error_percent < 5.0, "NRMSE {}%", out.error_percent);
    }
}
