//! Differential determinism: legacy OS-thread engine vs resumable engine.
//!
//! The resumable-core engine (PR 4) replaced the original two-way
//! thread-rendezvous engine on the hot path; the old engine survives
//! behind the `legacy-threads` feature purely as an oracle. These tests
//! push the same seeded workload through both engines and require
//! *byte-identical* results — same final cycle count, same output error,
//! and the same canonical stats JSON down to the last counter. Any
//! scheduling divergence between the engines shows up here long before it
//! would surface as a corrupted experiment cache.
//!
//! Compiled only with `--features legacy-threads` (CI runs it that way);
//! without the feature this file is an empty test binary.
#![cfg(feature = "legacy-threads")]

use ghostwriter_core::{MachineConfig, Protocol};
use ghostwriter_workloads::{execute, execute_legacy, find_benchmark, ScaleClass, DEFAULT_SEED};

/// Runs `name` at test scale under both engines and asserts fingerprint
/// equality for the given protocol.
fn assert_engines_agree(name: &str, protocol: Protocol, threads: usize, d: u8) {
    let entry = find_benchmark(name).unwrap_or_else(|| panic!("unknown benchmark {name}"));
    let cfg = || MachineConfig {
        cores: threads,
        protocol,
        ..MachineConfig::default()
    };

    let mut w_new = entry.build_seeded(ScaleClass::Test, DEFAULT_SEED);
    let new = execute(w_new.as_mut(), cfg(), threads, d);
    let mut w_old = entry.build_seeded(ScaleClass::Test, DEFAULT_SEED);
    let old = execute_legacy(w_old.as_mut(), cfg(), threads, d);

    assert_eq!(
        new.report.cycles, old.report.cycles,
        "{name}/{protocol:?}: cycle counts diverge"
    );
    assert_eq!(
        new.error_percent, old.error_percent,
        "{name}/{protocol:?}: output error diverges"
    );
    assert_eq!(
        new.report.stats.to_json().to_pretty(),
        old.report.stats.to_json().to_pretty(),
        "{name}/{protocol:?}: stats fingerprints diverge"
    );
}

/// One workload per class: Phoenix map-reduce, AxBench compute, and the
/// §2 false-sharing microbenchmark; each under both protocols.
#[test]
fn histogram_engines_agree() {
    assert_engines_agree("histogram", Protocol::Mesi, 4, 8);
    assert_engines_agree("histogram", Protocol::ghostwriter(), 4, 8);
}

#[test]
fn kmeans_engines_agree() {
    assert_engines_agree("kmeans", Protocol::Mesi, 4, 8);
    assert_engines_agree("kmeans", Protocol::ghostwriter(), 4, 8);
}

#[test]
fn blackscholes_engines_agree() {
    assert_engines_agree("blackscholes", Protocol::Mesi, 4, 8);
    assert_engines_agree("blackscholes", Protocol::ghostwriter(), 4, 8);
}

#[test]
fn bad_dot_product_engines_agree() {
    // The pathological false-sharing microbenchmark exercises barriers,
    // GS/GI service and the contended NoC path hardest.
    assert_engines_agree("bad_dot_product", Protocol::Mesi, 8, 4);
    assert_engines_agree("bad_dot_product", Protocol::ghostwriter(), 8, 4);
}

#[test]
fn jpeg_engines_agree() {
    assert_engines_agree("jpeg", Protocol::ghostwriter(), 4, 8);
}
