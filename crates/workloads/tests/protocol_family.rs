//! Cross-protocol differential suite: the base-protocol family is a
//! pure performance axis.
//!
//! MESI, MSI, MOESI, MOSI and MESIF differ in *where* a line's bytes
//! live and *who* answers a miss — never in what a load observes. So the
//! same seeded workload, run under every base protocol, must produce
//! bit-identical application output, zero output error, and a byte-equal
//! final coherent memory image. Only traffic/latency statistics may
//! differ (and for the protocols whose point is new traffic shapes, they
//! *must*: MOESI elides writebacks, MESIF forwards clean lines). Any
//! protocol bug that corrupts or loses a byte shows up here as an image
//! or output divergence against the MESI reference.

use ghostwriter_core::{BaseProtocol, MachineConfig, Protocol};
use ghostwriter_workloads::{execute, find_benchmark, RunOutcome, ScaleClass, DEFAULT_SEED};

fn run(name: &str, base: BaseProtocol, threads: usize) -> (RunOutcome, u64) {
    let entry = find_benchmark(name).unwrap_or_else(|| panic!("unknown benchmark {name}"));
    let cfg = MachineConfig {
        cores: threads,
        protocol: Protocol::Mesi,
        base_protocol: base,
        ..MachineConfig::default()
    };
    let mut w = entry.build_seeded(ScaleClass::Test, DEFAULT_SEED);
    let mut m = ghostwriter_core::Machine::new(cfg);
    w.build(&mut m, threads, 8);
    let finished = m.run();
    let fingerprint = finished.memory_fingerprint();
    let output = w.output(&finished);
    let reference = w.reference();
    let error_percent = w.metric().evaluate(&reference, &output);
    (
        RunOutcome {
            report: finished.report,
            output,
            error_percent,
        },
        fingerprint,
    )
}

/// Runs `name` under every base protocol and asserts the MESI run's
/// output vector (bit-for-bit) and memory image fingerprint everywhere.
fn assert_family_agrees(name: &str, threads: usize) {
    let (reference, ref_image) = run(name, BaseProtocol::Mesi, threads);
    assert_eq!(
        reference.error_percent, 0.0,
        "{name}: exact baseline must have zero error"
    );
    for base in BaseProtocol::ALL {
        if base == BaseProtocol::Mesi {
            continue;
        }
        let (out, image) = run(name, base, threads);
        assert_eq!(
            out.output.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            reference
                .output
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>(),
            "{name}/{}: per-op output values diverge from MESI",
            base.name()
        );
        assert_eq!(
            out.error_percent,
            0.0,
            "{name}/{}: baseline protocols must be exact",
            base.name()
        );
        assert_eq!(
            image,
            ref_image,
            "{name}/{}: final memory image diverges from MESI",
            base.name()
        );
    }
}

#[test]
fn histogram_family_agrees() {
    assert_family_agrees("histogram", 4);
}

#[test]
fn kmeans_family_agrees() {
    assert_family_agrees("kmeans", 4);
}

#[test]
fn linear_regression_family_agrees() {
    assert_family_agrees("linear_regression", 4);
}

#[test]
fn bad_dot_product_family_agrees() {
    // The false-sharing microbenchmark keeps lines bouncing between
    // cores, which is exactly where O/F ownership hand-offs live.
    assert_family_agrees("bad_dot_product", 8);
}

/// The new traffic shapes actually fire: MOESI's dirty-sharing
/// writeback elision and MESIF's clean forwarding are observable in the
/// stats of a contended workload, and absent under protocols that lack
/// the state.
#[test]
fn family_traffic_shapes_differ() {
    let (mesi, _) = run("bad_dot_product", BaseProtocol::Mesi, 8);
    let (moesi, _) = run("bad_dot_product", BaseProtocol::Moesi, 8);
    let (mesif, _) = run("bad_dot_product", BaseProtocol::Mesif, 8);
    assert_eq!(mesi.report.stats.wb_elisions, 0);
    assert_eq!(mesi.report.stats.clean_forwards, 0);
    assert!(
        moesi.report.stats.wb_elisions > 0,
        "MOESI never elided a writeback on a contended workload"
    );
    assert!(
        mesif.report.stats.clean_forwards > 0,
        "MESIF never clean-forwarded on a contended workload"
    );
    assert_eq!(mesif.report.stats.wb_elisions, 0);
    assert_eq!(moesi.report.stats.clean_forwards, 0);
}

/// Ghostwriter composes with MOESI: GW-over-MOESI is a configuration,
/// not a fork. Scribbles make the run approximate, so outputs may differ
/// from exact — the assertion is that the run completes, the error stays
/// within the workload's tolerance regime, and the GW rows actually
/// fired on top of the O-state machinery.
#[test]
fn ghostwriter_over_moesi_composes() {
    let entry = find_benchmark("bad_dot_product").unwrap();
    for base in [BaseProtocol::Mesi, BaseProtocol::Moesi] {
        let cfg = MachineConfig {
            cores: 8,
            protocol: Protocol::ghostwriter(),
            base_protocol: base,
            ..MachineConfig::default()
        };
        let mut w = entry.build_seeded(ScaleClass::Test, DEFAULT_SEED);
        let out = execute(w.as_mut(), cfg, 8, 4);
        assert!(
            out.error_percent < 50.0,
            "gw-over-{}: error {}% out of regime",
            base.name(),
            out.error_percent
        );
        let stats = &out.report.stats;
        assert!(
            stats.serviced_by_gs + stats.serviced_by_gi > 0,
            "gw-over-{}: no GS/GI service — Ghostwriter rows never fired",
            base.name()
        );
    }
}
