//! `gwsim` — command-line driver for the Ghostwriter simulator.
//!
//! Runs any Table 2 application (or microbenchmark) on a configurable
//! machine and prints the full report; with `--compare` it runs the
//! baseline/Ghostwriter pair and the paper's derived metrics.
//!
//! ```text
//! gwsim linear_regression --cores 24 --d 8 --compare
//! gwsim jpeg --cores 8 --protocol mesi --scale test
//! gwsim bad_dot_product --capture --timeout 512 --compare
//! gwsim --list
//! ```

use ghostwriter::core::config::{GiStorePolicy, GwConfig};
use ghostwriter::core::{BaseProtocol, MachineConfig, Protocol};
use ghostwriter::workloads::{
    execute, micro_benchmarks, paper_benchmarks, BenchmarkEntry, ScaleClass,
};

struct Options {
    app: String,
    cores: usize,
    threads: Option<usize>,
    d: u8,
    mesi: bool,
    msi_base: bool,
    capture: bool,
    timeout: u64,
    bound: Option<u32>,
    contention: bool,
    switch_period: Option<u64>,
    scale: ScaleClass,
    run_compare: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: gwsim <app> [options]\n\
         \n\
         options:\n\
           --list               list applications and exit\n\
           --cores N            cores (default 24, paper Table 1)\n\
           --threads N          threads (default = cores)\n\
           --d N                d-distance for scribbles (default 8)\n\
           --protocol mesi|gw   baseline or Ghostwriter (default gw)\n\
           --msi                use the MSI protocol family (no E state)\n\
           --capture            Fig. 3-literal GI store policy\n\
           --timeout N          GI timeout in cycles (default 1024)\n\
           --bound N            §3.5 error bound (max hidden writes)\n\
           --contention         model per-link NoC contention\n\
           --switch N           context-switch period in cycles (§3.5 forfeit)\n\
           --scale test|eval    input scale (default eval)\n\
           --compare            run MESI + Ghostwriter and derive Figs. 7-11"
    );
    std::process::exit(2)
}

fn parse() -> Options {
    let mut args = std::env::args().skip(1);
    let mut o = Options {
        app: String::new(),
        cores: 24,
        threads: None,
        d: 8,
        mesi: false,
        msi_base: false,
        capture: false,
        timeout: 1024,
        bound: None,
        contention: false,
        switch_period: None,
        scale: ScaleClass::Eval,
        run_compare: false,
    };
    let next_num = |args: &mut dyn Iterator<Item = String>, flag: &str| -> u64 {
        args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
            eprintln!("{flag} needs a numeric argument");
            usage()
        })
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--list" => {
                for e in paper_benchmarks().iter().chain(micro_benchmarks().iter()) {
                    println!("{:<20} {} ({})", e.name, e.domain, e.suite.label());
                }
                std::process::exit(0);
            }
            "--cores" => o.cores = next_num(&mut args, "--cores") as usize,
            "--threads" => o.threads = Some(next_num(&mut args, "--threads") as usize),
            "--d" => o.d = next_num(&mut args, "--d") as u8,
            "--timeout" => o.timeout = next_num(&mut args, "--timeout"),
            "--bound" => o.bound = Some(next_num(&mut args, "--bound") as u32),
            "--capture" => o.capture = true,
            "--msi" => o.msi_base = true,
            "--contention" => o.contention = true,
            "--switch" => o.switch_period = Some(next_num(&mut args, "--switch")),
            "--compare" => o.run_compare = true,
            "--protocol" => match args.next().as_deref() {
                Some("mesi") => o.mesi = true,
                Some("gw") | Some("ghostwriter") => o.mesi = false,
                _ => usage(),
            },
            "--scale" => match args.next().as_deref() {
                Some("test") => o.scale = ScaleClass::Test,
                Some("eval") => o.scale = ScaleClass::Eval,
                _ => usage(),
            },
            "-h" | "--help" => usage(),
            name if !name.starts_with('-') && o.app.is_empty() => o.app = name.to_string(),
            other => {
                eprintln!("unknown option {other}");
                usage()
            }
        }
    }
    if o.app.is_empty() {
        usage()
    }
    o
}

fn find(app: &str) -> BenchmarkEntry {
    paper_benchmarks()
        .into_iter()
        .chain(micro_benchmarks())
        .find(|e| e.name == app)
        .unwrap_or_else(|| {
            eprintln!("unknown application '{app}' (try --list)");
            std::process::exit(2)
        })
}

fn main() {
    let o = parse();
    let entry = find(&o.app);
    let threads = o.threads.unwrap_or(o.cores);
    let gw = Protocol::Ghostwriter(GwConfig {
        gi_timeout: o.timeout,
        gi_stores: if o.capture {
            GiStorePolicy::Capture
        } else {
            GiStorePolicy::Fallback
        },
        max_hidden_writes: o.bound,
        ..GwConfig::default()
    });
    let cfg = |protocol| MachineConfig {
        cores: o.cores,
        protocol,
        base_protocol: if o.msi_base {
            BaseProtocol::Msi
        } else {
            BaseProtocol::Mesi
        },
        model_contention: o.contention,
        context_switch_period: o.switch_period,
        ..MachineConfig::default()
    };

    if o.run_compare {
        let scale = o.scale;
        let base_cfg = cfg(Protocol::Mesi);
        let mut base_w = entry.build(scale);
        let base = execute(base_w.as_mut(), base_cfg, threads, o.d);
        let mut gw_w = entry.build(scale);
        let g = execute(gw_w.as_mut(), cfg(gw), threads, o.d);
        println!(
            "{} @ {} cores, d={} ({})",
            entry.name,
            o.cores,
            o.d,
            entry.metric.label()
        );
        println!(
            "  baseline : {:>9} cycles  {:>8} messages",
            base.report.cycles,
            base.report.stats.traffic.total()
        );
        println!(
            "  ghostwriter: {:>7} cycles  {:>8} messages",
            g.report.cycles,
            g.report.stats.traffic.total()
        );
        println!(
            "  speedup {:.1}%  traffic {:.3}  energy saved {:.1}%  error {:.4}%",
            g.report.speedup_percent_vs(&base.report),
            g.report.normalized_traffic_vs(&base.report),
            g.report.energy_saved_percent_vs(&base.report),
            g.error_percent
        );
        println!(
            "  GS serviced {:.1}%  GI serviced {:.1}%  GS inv {}  GI timeouts {}",
            g.report.stats.gs_service_fraction() * 100.0,
            g.report.stats.gi_service_fraction() * 100.0,
            g.report.stats.gs_invalidations,
            g.report.stats.gi_timeouts
        );
        return;
    }

    let protocol = if o.mesi { Protocol::Mesi } else { gw };
    let mut w = entry.build(o.scale);
    let out = execute(w.as_mut(), cfg(protocol), threads, o.d);
    let s = &out.report.stats;
    println!("{} @ {} cores, {:?}", entry.name, o.cores, protocol);
    println!("  cycles           : {}", out.report.cycles);
    println!(
        "  instructions     : {} loads, {} stores, {} scribbles, {} barriers",
        s.loads, s.stores, s.scribbles, s.barriers
    );
    println!(
        "  L1               : {} hits, {} misses ({:.2}% miss rate)",
        s.l1_load_hits + s.l1_store_hits,
        s.l1_misses(),
        100.0 * s.l1_misses() as f64 / s.l1_accesses().max(1) as f64
    );
    println!(
        "  coherence        : {} messages, {} flit-hops",
        s.traffic.total(),
        s.traffic.flit_hops()
    );
    println!(
        "  approximate      : GS {} entries + {} hits, GI {} entries + {} hits, {} forfeits",
        s.serviced_by_gs,
        s.gs_hits,
        s.serviced_by_gi,
        s.gi_store_hits,
        s.gs_invalidations + s.gi_timeouts + s.approx_evictions
    );
    println!(
        "  DRAM             : {} reads, {} writes",
        s.dram_reads, s.dram_writes
    );
    println!(
        "  energy           : {:.1} nJ memory + {:.1} nJ network",
        out.report.energy.memory_pj / 1000.0,
        out.report.energy.network_pj / 1000.0
    );
    println!(
        "  output error     : {:.4}% ({})",
        out.error_percent,
        entry.metric.label()
    );
    println!(
        "  load imbalance   : {:.3} (max finish / mean finish)",
        out.report.imbalance()
    );
    println!("  per-core         : ops / hits / misses / approx-serviced / finish");
    for (c, pc) in out.report.per_core.iter().enumerate() {
        println!(
            "    core {c:<2}        : {:>7} {:>7} {:>6} {:>6} {:>9}",
            pc.ops, pc.l1_hits, pc.l1_misses, pc.approx_serviced, pc.finish_cycle
        );
    }
}
