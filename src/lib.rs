//! Facade crate re-exporting the Ghostwriter simulator's public API.
pub use ghostwriter_core as core;
pub use ghostwriter_energy as energy;
pub use ghostwriter_mem as mem;
pub use ghostwriter_noc as noc;
pub use ghostwriter_sim as sim;
pub use ghostwriter_workloads as workloads;
