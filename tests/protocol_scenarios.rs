//! Machine-level reproductions of the paper's protocol walkthroughs
//! (Figs. 4 and 5), asserting the message-level behaviour.

use ghostwriter::core::{Machine, MachineConfig, Protocol};
use ghostwriter::mem::Addr;

fn machine(cores: usize, protocol: Protocol) -> (Machine, Addr) {
    let mut m = Machine::new(MachineConfig {
        cores,
        protocol,
        ..MachineConfig::default()
    });
    m.enable_trace();
    let block = m.alloc_padded(64);
    (m, block)
}

/// Fig. 4: migratory false sharing. Core 0 stores offset 0; core 1 loads
/// then writes offset 1; core 0 re-reads.
fn migratory(protocol: Protocol) -> (u64, u64, u32, u32) {
    let (mut m, block) = machine(2, protocol);
    let rounds = 5u32;
    m.add_thread(move |ctx| async move {
        ctx.approx_begin(4).await;
        for r in 0..rounds {
            ctx.store_u32(block, r).await;
            ctx.barrier().await;
            ctx.barrier().await;
            let _ = ctx.load_u32(block).await;
            ctx.barrier().await;
        }
        ctx.approx_end().await;
    });
    m.add_thread(move |ctx| async move {
        ctx.approx_begin(4).await;
        for r in 0..rounds {
            ctx.barrier().await;
            let v = ctx.load_u32(block.add(4)).await;
            ctx.scribble_u32(block.add(4), v + (r & 1)).await;
            ctx.barrier().await;
            ctx.barrier().await;
        }
        ctx.approx_end().await;
    });
    let run = m.run();
    let upgrades = run.trace.iter().filter(|t| t.name == "UPGRADE").count() as u64;
    let total = run.report.stats.traffic.total();
    let off0 = run.read_u32(block);
    let off1 = run.read_u32(block.add(4));
    (total, upgrades, off0, off1)
}

#[test]
fn fig4_ghostwriter_eliminates_upgrade_round() {
    let (mesi_total, mesi_upg, m0, _) = migratory(Protocol::Mesi);
    let (gw_total, gw_upg, g0, _) = migratory(Protocol::ghostwriter());
    // Under MESI both cores' writes need UPGRADE rounds; under
    // Ghostwriter core 1's scribbles hit in GS, leaving only core 0's
    // conventional stores (exactly Fig. 4b, where "STORE c / UPGRADE"
    // remains in epoch 2).
    assert!(
        mesi_upg >= 8,
        "baseline should upgrade both cores: {mesi_upg}"
    );
    assert!(
        gw_upg <= mesi_upg / 2,
        "GS should absorb core 1's upgrades: {gw_upg} vs {mesi_upg}"
    );
    assert!(gw_total < mesi_total);
    // Core 0's precise slot is identical either way (different offset).
    assert_eq!(m0, g0);
}

/// Fig. 5: producer-consumer with a migrating producer. Core 1 holds a
/// stale copy and scribbles it; core 2 keeps consuming offset 0.
fn producer_consumer(protocol: Protocol) -> (u64, u64, u32) {
    let (mut m, block) = machine(3, protocol);
    let rounds = 5u32;
    m.add_thread(move |ctx| async move {
        ctx.approx_begin(4).await;
        for r in 0..rounds {
            ctx.store_u32(block, 100 + r).await;
            ctx.barrier().await;
            ctx.barrier().await;
        }
        ctx.approx_end().await;
    });
    m.add_thread(move |ctx| async move {
        ctx.approx_begin(4).await;
        let _ = ctx.load_u32(block.add(4)).await;
        for r in 0..rounds {
            ctx.barrier().await;
            let v = ctx.load_u32(block.add(4)).await;
            ctx.scribble_u32(block.add(4), v + (r & 1)).await;
            ctx.barrier().await;
        }
        ctx.approx_end().await;
    });
    m.add_thread(move |ctx| async move {
        ctx.approx_begin(4).await;
        let mut last = 0;
        for _ in 0..rounds {
            ctx.barrier().await;
            last = ctx.load_u32(block).await;
            ctx.barrier().await;
        }
        ctx.store_u32(block.add(8), last).await;
        ctx.approx_end().await;
    });
    let run = m.run();
    let exclusive = run
        .trace
        .iter()
        .filter(|t| t.name == "GETX" || t.name == "UPGRADE")
        .count() as u64;
    (
        run.report.stats.traffic.total(),
        exclusive,
        run.read_u32(block.add(8)),
    )
}

#[test]
fn fig5_gi_absorbs_next_producers_exclusive_requests() {
    let (mesi_total, mesi_excl, m_last) = producer_consumer(Protocol::Mesi);
    let (gw_total, gw_excl, g_last) = producer_consumer(Protocol::ghostwriter());
    assert!(gw_excl < mesi_excl, "{gw_excl} vs {mesi_excl}");
    assert!(gw_total < mesi_total);
    // The consumer reads the precise producer's final value either way:
    // it reads offset 0, which only core 0 writes conventionally.
    assert_eq!(m_last, g_last);
    assert_eq!(m_last, 104);
}

#[test]
fn ghostwriter_never_hurts_sharing_free_program() {
    // Paper §4.3: no false sharing, no effect. Threads work on disjoint
    // blocks; Ghostwriter must match MESI exactly.
    let run = |protocol| {
        let mut m = Machine::new(MachineConfig {
            cores: 4,
            protocol,
            ..MachineConfig::default()
        });
        let base = m.alloc_padded(64 * 4);
        for t in 0..4usize {
            m.add_thread(move |ctx| async move {
                ctx.approx_begin(8).await;
                let slot = base.add(64 * t as u64);
                for i in 0..100u32 {
                    let v = ctx.load_u32(slot).await;
                    ctx.scribble_u32(slot, v.wrapping_add(i)).await;
                }
                ctx.approx_end().await;
            });
        }
        let r = m.run();
        (r.report.cycles, r.report.stats.traffic.total())
    };
    assert_eq!(run(Protocol::Mesi), run(Protocol::ghostwriter()));
}
