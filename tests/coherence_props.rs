//! Property-based coherence tests: randomized multi-threaded access
//! patterns driven through the full machine.
//!
//! * Under baseline MESI, with one writer per address, every reader
//!   observes a non-decreasing sequence of that writer's (increasing)
//!   values — the coherence/SC guarantee of the write-invalidate
//!   protocol — and the final memory holds each writer's last value.
//! * Under Ghostwriter, conventional (non-annotated) data keeps the same
//!   guarantee even while scribble chaos runs on a disjoint approximate
//!   pool, and nothing deadlocks or panics.

#![allow(clippy::needless_range_loop)] // indices are thread/block ids

use ghostwriter::core::{Machine, MachineConfig, Protocol};
use ghostwriter::mem::Addr;
use proptest::prelude::*;

/// One reader/writer schedule: per thread, a list of (address index,
/// optional work) steps.
#[derive(Debug, Clone)]
struct Plan {
    threads: usize,
    blocks: usize,
    steps: Vec<Vec<(usize, u8)>>,
    small_l2: bool,
}

fn plan_strategy() -> impl Strategy<Value = Plan> {
    (2usize..=4, 2usize..=8, any::<bool>()).prop_flat_map(|(threads, blocks, small_l2)| {
        let step = (0..blocks, 0u8..4);
        let thread_steps = proptest::collection::vec(step, 10..40);
        proptest::collection::vec(thread_steps, threads..=threads).prop_map(move |steps| Plan {
            threads,
            blocks,
            steps,
            small_l2,
        })
    })
}

fn config(threads: usize, small_l2: bool, protocol: Protocol) -> MachineConfig {
    if small_l2 {
        // Tiny caches force L1 evictions and L2 inclusion recalls.
        MachineConfig::small(threads, protocol)
    } else {
        MachineConfig {
            cores: threads,
            protocol,
            ..MachineConfig::default()
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// Single-writer-per-address MESI runs: readers observe monotone
    /// values, final state is each writer's last write.
    #[test]
    fn mesi_single_writer_monotonic(plan in plan_strategy()) {
        let mut m = Machine::new(config(plan.threads, plan.small_l2, Protocol::Mesi));
        // Writer t owns slot t within each block (false sharing on
        // purpose); readers read any slot.
        let base = m.alloc_padded(64 * plan.blocks as u64);
        let threads = plan.threads;
        let blocks = plan.blocks;
        let mut writes_per = vec![vec![0u32; blocks]; threads];
        for (t, steps) in plan.steps.iter().enumerate() {
            for &(b, _) in steps {
                writes_per[t][b] += 1;
            }
        }
        for (t, steps) in plan.steps.clone().into_iter().enumerate() {
            m.add_thread(move |ctx| async move {
                let mut counters = vec![0u32; blocks];
                let mut seen = vec![vec![0u32; threads]; blocks];
                for (b, w) in steps {
                    let my_slot = base.add(64 * b as u64 + 4 * t as u64);
                    counters[b] += 1;
                    ctx.store_u32(my_slot, counters[b]).await;
                    if w > 0 {
                        ctx.work(w as u64).await;
                    }
                    // Read every other writer's slot in this block and
                    // check monotonicity.
                    for u in 0..threads {
                        let v = ctx.load_u32(base.add(64 * b as u64 + 4 * u as u64)).await;
                        assert!(
                            v >= seen[b][u],
                            "reader {t} saw block {b} writer {u} go backwards: {v} < {}",
                            seen[b][u]
                        );
                        seen[b][u] = v;
                    }
                }
            });
        }
        let run = m.run();
        for t in 0..threads {
            for b in 0..blocks {
                let v = run.read_u32(Addr(base.0 + 64 * b as u64 + 4 * t as u64));
                prop_assert_eq!(v, writes_per[t][b], "final value thread {} block {}", t, b);
            }
        }
    }

    /// Scribble chaos on an approximate pool never corrupts conventional
    /// data and never deadlocks, under both GI-store policies.
    #[test]
    fn ghostwriter_conventional_data_stays_exact(plan in plan_strategy(), capture in any::<bool>()) {
        let protocol = if capture {
            Protocol::ghostwriter_capture(256)
        } else {
            Protocol::ghostwriter()
        };
        let mut m = Machine::new(config(plan.threads, plan.small_l2, protocol));
        let approx = m.alloc_padded(64 * plan.blocks as u64);
        let exact = m.alloc_padded(64 * plan.blocks as u64);
        let threads = plan.threads;
        let blocks = plan.blocks;
        let mut writes_per = vec![vec![0u32; blocks]; threads];
        for (t, steps) in plan.steps.iter().enumerate() {
            for &(b, _) in steps {
                writes_per[t][b] += 1;
            }
        }
        for (t, steps) in plan.steps.clone().into_iter().enumerate() {
            m.add_thread(move |ctx| async move {
                ctx.approx_begin(4).await;
                let mut counters = vec![0u32; blocks];
                for (b, w) in steps {
                    // Approximate chaos: read-modify-scribble a falsely
                    // shared slot.
                    let a_slot = approx.add(64 * b as u64 + 4 * t as u64);
                    let v = ctx.load_u32(a_slot).await;
                    ctx.scribble_u32(a_slot, v.wrapping_add(w as u32)).await;
                    // Conventional ground truth.
                    let e_slot = exact.add(64 * b as u64 + 4 * t as u64);
                    counters[b] += 1;
                    ctx.store_u32(e_slot, counters[b]).await;
                    if w > 0 {
                        ctx.work(w as u64).await;
                    }
                }
                ctx.approx_end().await;
            });
        }
        let run = m.run();
        for t in 0..threads {
            for b in 0..blocks {
                let v = run.read_u32(Addr(exact.0 + 64 * b as u64 + 4 * t as u64));
                prop_assert_eq!(v, writes_per[t][b], "conventional slot {} {}", t, b);
            }
        }
    }
}
