//! Cross-crate exactness invariants:
//! * every workload under baseline MESI reproduces the precise reference
//!   bit-exactly (the parallel protocol is correct);
//! * every workload under Ghostwriter with d = 0 is also exact — only
//!   silent stores are approximated, and forfeiting a silent store cannot
//!   change memory.

use ghostwriter::core::MachineConfig;
use ghostwriter::core::Protocol;
use ghostwriter::workloads::{
    execute, extended_benchmarks, micro_benchmarks, paper_benchmarks, ScaleClass,
};

const THREADS: usize = 4;

fn cfg(protocol: Protocol) -> MachineConfig {
    MachineConfig {
        cores: THREADS,
        protocol,
        ..MachineConfig::default()
    }
}

#[test]
fn all_workloads_exact_under_mesi() {
    for entry in paper_benchmarks()
        .iter()
        .chain(micro_benchmarks().iter())
        .chain(extended_benchmarks().iter())
    {
        let mut w = entry.build(ScaleClass::Test);
        let out = execute(w.as_mut(), cfg(Protocol::Mesi), THREADS, 8);
        assert_eq!(
            out.error_percent, 0.0,
            "{} must be exact under MESI",
            entry.name
        );
    }
}

#[test]
fn all_workloads_exact_under_ghostwriter_d0() {
    for entry in paper_benchmarks()
        .iter()
        .chain(micro_benchmarks().iter())
        .chain(extended_benchmarks().iter())
    {
        let mut w = entry.build(ScaleClass::Test);
        let out = execute(w.as_mut(), cfg(Protocol::ghostwriter()), THREADS, 0);
        assert_eq!(
            out.error_percent, 0.0,
            "{} must be exact at d=0 (silent stores only)",
            entry.name
        );
    }
}

#[test]
fn disabled_approx_states_behave_like_mesi() {
    // Ghostwriter with both approximate states disabled must equal the
    // baseline in timing AND traffic, not just output.
    use ghostwriter::core::config::GwConfig;
    let gw_off = Protocol::Ghostwriter(GwConfig {
        enable_gs: false,
        enable_gi: false,
        ..GwConfig::default()
    });
    for entry in paper_benchmarks() {
        let mut a = entry.build(ScaleClass::Test);
        let mut b = entry.build(ScaleClass::Test);
        let base = execute(a.as_mut(), cfg(Protocol::Mesi), THREADS, 8);
        let off = execute(b.as_mut(), cfg(gw_off), THREADS, 8);
        assert_eq!(base.report.cycles, off.report.cycles, "{}", entry.name);
        assert_eq!(
            base.report.stats.traffic.total(),
            off.report.stats.traffic.total(),
            "{}",
            entry.name
        );
        assert_eq!(off.error_percent, 0.0, "{}", entry.name);
    }
}
