//! The simulator is a pure function of its inputs: repeated runs of every
//! workload under both protocols produce identical cycle counts, message
//! counts, energy events and outputs.

use ghostwriter::core::{MachineConfig, Protocol};
use ghostwriter::workloads::{execute, paper_benchmarks, ScaleClass};

fn fingerprint(protocol: Protocol) -> Vec<(u64, u64, u64, u64, String)> {
    paper_benchmarks()
        .iter()
        .map(|entry| {
            let mut w = entry.build(ScaleClass::Test);
            let out = execute(
                w.as_mut(),
                MachineConfig {
                    cores: 4,
                    protocol,
                    ..MachineConfig::default()
                },
                4,
                8,
            );
            (
                out.report.cycles,
                out.report.stats.traffic.total(),
                out.report.stats.serviced_by_gs,
                out.report.stats.serviced_by_gi,
                format!("{:?}", out.output),
            )
        })
        .collect()
}

#[test]
fn mesi_runs_are_deterministic() {
    assert_eq!(fingerprint(Protocol::Mesi), fingerprint(Protocol::Mesi));
}

#[test]
fn ghostwriter_runs_are_deterministic() {
    assert_eq!(
        fingerprint(Protocol::ghostwriter()),
        fingerprint(Protocol::ghostwriter())
    );
}
