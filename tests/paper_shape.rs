//! The headline reproduction, pinned as a regression test: the paper's
//! strongest result (linear_regression under Ghostwriter) must keep its
//! shape — large speedup and traffic cut at near-zero output error — and
//! the no-false-sharing applications must remain completely unaffected.
//!
//! Runs at paper scale (24 cores, Eval inputs), a few seconds.

use ghostwriter::core::Protocol;
use ghostwriter::workloads::{compare, paper_benchmarks, ScaleClass};

#[test]
fn linear_regression_headline_shape() {
    let entry = paper_benchmarks()
        .into_iter()
        .find(|e| e.name == "linear_regression")
        .expect("registry");
    let cmp = compare(
        &|| entry.build(ScaleClass::Eval),
        24,
        24,
        8,
        Protocol::ghostwriter(),
    );
    // Paper: 27.2-37.3% speedup, -22.8% traffic, 63.7-69.1% GS service,
    // <0.12% error. Our regression bands are looser but directional.
    assert!(
        cmp.speedup_percent() > 15.0,
        "speedup collapsed: {:.1}%",
        cmp.speedup_percent()
    );
    assert!(
        cmp.normalized_traffic() < 0.8,
        "traffic reduction lost: {:.3}",
        cmp.normalized_traffic()
    );
    assert!(
        cmp.gs_serviced_percent() > 60.0,
        "GS utilization lost: {:.1}%",
        cmp.gs_serviced_percent()
    );
    assert!(
        cmp.output_error_percent() < 0.12,
        "error above the paper's ceiling: {:.4}%",
        cmp.output_error_percent()
    );
    assert!(cmp.energy_saved_percent() > 15.0);
}

#[test]
fn no_false_sharing_apps_are_untouched() {
    for name in ["histogram", "blackscholes", "inversek2j"] {
        let entry = paper_benchmarks()
            .into_iter()
            .find(|e| e.name == name)
            .expect("registry");
        let cmp = compare(
            &|| entry.build(ScaleClass::Eval),
            24,
            24,
            8,
            Protocol::ghostwriter(),
        );
        // Paper §4.3: "Ghostwriter does not provide performance gains nor
        // does it degrade performance for applications that do not show
        // false sharing... It also does not introduce error."
        assert_eq!(
            cmp.baseline.report.cycles, cmp.ghostwriter.report.cycles,
            "{name}: cycles changed"
        );
        assert_eq!(
            cmp.baseline.report.stats.traffic.total(),
            cmp.ghostwriter.report.stats.traffic.total(),
            "{name}: traffic changed"
        );
        assert_eq!(cmp.output_error_percent(), 0.0, "{name}: error introduced");
    }
}
