//! Machine-level tests of the paper's programmer-model details (§3.1,
//! §3.5) and this reproduction's extensions.

use ghostwriter::core::config::GwConfig;
use ghostwriter::core::{Machine, MachineConfig, Protocol};
use ghostwriter::workloads::{compare, BadDotProduct};

fn machine(cores: usize, protocol: Protocol) -> Machine {
    Machine::new(MachineConfig {
        cores,
        protocol,
        ..MachineConfig::default()
    })
}

/// §3.1: `approx_dist` can be re-programmed between regions (the
/// `setaprx` instruction): the same store value is approximated under a
/// loose region and published under a tight one.
#[test]
fn per_region_d_distances() {
    let mut m = machine(2, Protocol::ghostwriter());
    let block = m.alloc_padded(64);
    m.add_thread(move |ctx| async move {
        for r in 0..8u32 {
            ctx.store_u32(block, 0x100 * r).await;
            ctx.barrier().await;
            ctx.barrier().await;
        }
    });
    m.add_thread(move |ctx| async move {
        let mut gs_like_hits = 0u32;
        for r in 0..8u32 {
            ctx.barrier().await;
            let v = ctx.load_u32(block.add(4)).await;
            // First half: tight region (d=1) — delta 2 always publishes.
            // Second half: loose region (d=4) — delta 2 is absorbed.
            let d = if r < 4 { 1 } else { 4 };
            ctx.approx_begin(d).await;
            ctx.scribble_u32(block.add(4), v + 2).await;
            ctx.approx_end().await;
            gs_like_hits += 1;
            ctx.barrier().await;
        }
        assert_eq!(gs_like_hits, 8);
    });
    let run = m.run();
    let s = &run.report.stats;
    // The loose region's scribbles (4 of them) were serviced by GS; the
    // tight region's went conventional.
    assert_eq!(s.serviced_by_gs + s.gs_hits, 4, "loose-region scribbles");
    assert!(s.upgrades_from_s + s.stores_on_invalid_tagged >= 4);
}

/// §3.1: `approx_end` does not flush — blocks already in GS remain
/// usable for computation (loads still hit and see the local values).
#[test]
fn approx_end_keeps_gs_blocks_warm() {
    let mut m = machine(2, Protocol::ghostwriter());
    let block = m.alloc_padded(64);
    let result = m.alloc_padded(64);
    m.add_thread(move |ctx| async move {
        ctx.store_u32(block, 5).await;
        ctx.barrier().await;
        ctx.barrier().await;
    });
    m.add_thread(move |ctx| async move {
        ctx.barrier().await;
        // Enter GS with a hidden write...
        let v = ctx.load_u32(block.add(4)).await;
        ctx.approx_begin(4).await;
        ctx.scribble_u32(block.add(4), v + 3).await;
        ctx.approx_end().await;
        // ...after approx_end the local copy still serves loads (hit,
        // hidden value visible to this core).
        let local = ctx.load_u32(block.add(4)).await;
        ctx.store_u32(result, local).await;
        ctx.barrier().await;
    });
    let run = m.run();
    assert_eq!(
        run.read_u32(result),
        3,
        "load after approx_end sees the local GS value"
    );
    assert_eq!(run.report.stats.serviced_by_gs, 1);
}

/// Extension (§3.5): the runtime error bound caps the pathological
/// microbenchmark's error under the Capture policy with only a modest
/// traffic give-back.
#[test]
fn error_bound_tames_capture_divergence() {
    let run = |bound| {
        let p = Protocol::Ghostwriter(GwConfig {
            gi_stores: ghostwriter::core::GiStorePolicy::Capture,
            max_hidden_writes: bound,
            ..GwConfig::default()
        });
        compare(
            &|| Box::new(BadDotProduct::with_work(0xF16, 1_200, true, 64)),
            8,
            8,
            4,
            p,
        )
    };
    let unbounded = run(None);
    let bounded = run(Some(4));
    assert!(
        bounded.output_error_percent() < unbounded.output_error_percent() / 2.0
            || unbounded.output_error_percent() < 1.0,
        "bound must cut error: {} vs {}",
        bounded.output_error_percent(),
        unbounded.output_error_percent()
    );
    assert!(
        bounded.normalized_traffic() < 1.0,
        "bounded run should still save traffic"
    );
}

/// Fig. 12's direction at machine level: under Capture semantics, a
/// longer GI timeout hides more work and loses more of it.
#[test]
fn longer_timeout_means_more_error_under_capture() {
    let run = |timeout| {
        compare(
            &|| Box::new(BadDotProduct::with_work(0xF16, 1_200, true, 64)),
            8,
            8,
            4,
            Protocol::ghostwriter_capture(timeout),
        )
    };
    let short = run(128);
    let long = run(2048);
    assert!(
        long.output_error_percent() >= short.output_error_percent(),
        "error should grow with the timeout: {} vs {}",
        long.output_error_percent(),
        short.output_error_percent()
    );
    assert!(
        long.normalized_traffic() <= short.normalized_traffic() + 1e-9,
        "traffic should shrink with the timeout"
    );
}

/// The d-legality rule (§3.1): d ≥ 8 on byte accesses demotes to
/// conventional stores — byte data is never blanket-approximated.
#[test]
fn byte_scribbles_at_d8_are_demoted() {
    let mut m = machine(2, Protocol::ghostwriter());
    let block = m.alloc_padded(64);
    m.add_thread(move |ctx| async move {
        ctx.store_u8(block, 1).await;
        ctx.barrier().await;
        ctx.barrier().await;
    });
    m.add_thread(move |ctx| async move {
        ctx.barrier().await;
        let _ = ctx.load_u8(block.add(1)).await;
        ctx.approx_begin(8).await;
        // Byte store at d=8: would admit any value, so it must take the
        // conventional UPGRADE path instead of entering GS.
        ctx.scribble_u8(block.add(1), 200).await;
        ctx.approx_end().await;
        ctx.barrier().await;
    });
    let run = m.run();
    assert_eq!(run.report.stats.serviced_by_gs, 0);
    assert_eq!(run.report.stats.scribbles, 0, "demoted to a store");
    assert_eq!(run.read_u32(block.add(0)) & 0xFF, 1);
}

/// Energy accounting sanity at machine level: events are populated, the
/// split matches the model, and Ghostwriter's savings come from fewer
/// events, not different constants.
#[test]
fn energy_accounting_is_consistent() {
    use ghostwriter::energy::EnergyModel;
    let run = |protocol| {
        let mut m = machine(4, protocol);
        let shared = m.alloc_padded(64);
        for t in 0..4u64 {
            m.add_thread(move |ctx| async move {
                ctx.approx_begin(4).await;
                let slot = shared.add(4 * t);
                for i in 0..100u32 {
                    let v = ctx.load_u32(slot).await;
                    ctx.scribble_u32(slot, v + (i & 1)).await;
                }
                ctx.approx_end().await;
            });
        }
        m.run().report
    };
    let base = run(Protocol::Mesi);
    let gw = run(Protocol::ghostwriter());
    for r in [&base, &gw] {
        let ev = &r.stats.energy_events;
        assert!(ev.l1_reads > 0 && ev.l1_writes > 0);
        assert_eq!(ev.router_flits, r.stats.traffic.router_flits());
        assert_eq!(ev.link_flit_hops, r.stats.traffic.flit_hops());
        // Re-evaluating the model over the events reproduces the report.
        let again = EnergyModel::default().evaluate(ev);
        assert_eq!(again.memory_pj, r.energy.memory_pj);
        assert_eq!(again.network_pj, r.energy.network_pj);
    }
    assert!(gw.energy.total_pj() < base.energy.total_pj());
}

/// The machine honours custom energy models.
#[test]
fn custom_energy_model_scales_results() {
    use ghostwriter::energy::EnergyModel;
    let run = |scale: f64| {
        let mut m = machine(2, Protocol::Mesi);
        let mut model = EnergyModel::default();
        model.l1_read_pj *= scale;
        model.l1_write_pj *= scale;
        model.l2_read_pj *= scale;
        model.l2_write_pj *= scale;
        model.l2_tag_pj *= scale;
        model.l1_tag_pj *= scale;
        model.dram_read_pj *= scale;
        model.dram_write_pj *= scale;
        m.set_energy_model(model);
        let a = m.alloc_padded(64);
        m.add_thread(move |ctx| async move {
            for i in 0..50u32 {
                ctx.store_u32(a, i).await;
            }
        });
        m.run().report.energy.memory_pj
    };
    let base = run(1.0);
    let doubled = run(2.0);
    assert!((doubled - 2.0 * base).abs() < 1e-6);
}
